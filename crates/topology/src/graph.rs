//! The capacitated directed-graph model of a WAN.

use std::collections::HashMap;

use crate::error::TopologyError;

/// Dense node index.
pub type NodeId = usize;
/// Dense directed-edge index.
pub type EdgeId = usize;

/// A directed link with capacity (e.g. in Gbps; units are arbitrary but must
/// be consistent with traffic-matrix units).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Nonnegative capacity.
    pub capacity: f64,
}

/// A WAN topology: a directed multigraph *without* parallel edges or self
/// loops (parallel physical circuits are modelled as aggregated capacity,
/// matching the paper's description of links as bundles of sub-links).
#[derive(Clone, Debug, Default)]
pub struct Topology {
    n: usize,
    edges: Vec<Edge>,
    index: HashMap<(NodeId, NodeId), EdgeId>,
    out_adj: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Topology {
    /// An edgeless topology with `n` nodes.
    pub fn new(n: usize) -> Self {
        Topology {
            n,
            edges: Vec::new(),
            index: HashMap::new(),
            out_adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All directed edges, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id. Panics if out of range; see
    /// [`Topology::try_edge`] for the fallible form.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e]
    }

    /// The edge with the given id, or [`TopologyError::EdgeOutOfRange`].
    pub fn try_edge(&self, e: EdgeId) -> Result<&Edge, TopologyError> {
        self.edges.get(e).ok_or(TopologyError::EdgeOutOfRange {
            edge: e,
            num_edges: self.edges.len(),
        })
    }

    /// Id of the directed edge `src -> dst`, if present.
    pub fn edge_id(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.index.get(&(src, dst)).copied()
    }

    /// Outgoing `(neighbor, edge)` pairs of `u`.
    pub fn out_neighbors(&self, u: NodeId) -> &[(NodeId, EdgeId)] {
        &self.out_adj[u]
    }

    /// Capacity of edge `e`.
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.edges[e].capacity
    }

    /// Capacities of all edges, indexed by [`EdgeId`].
    pub fn capacities(&self) -> Vec<f64> {
        self.edges.iter().map(|e| e.capacity).collect()
    }

    /// Overwrite the capacity of edge `e`.
    pub fn set_capacity(&mut self, e: EdgeId, capacity: f64) -> Result<(), TopologyError> {
        if e >= self.edges.len() {
            return Err(TopologyError::EdgeOutOfRange {
                edge: e,
                num_edges: self.edges.len(),
            });
        }
        if capacity < 0.0 {
            return Err(TopologyError::NegativeCapacity { capacity });
        }
        self.edges[e].capacity = capacity;
        Ok(())
    }

    /// Overwrite all capacities at once (length must match edge count).
    pub fn set_capacities(&mut self, caps: &[f64]) -> Result<(), TopologyError> {
        assert_eq!(caps.len(), self.edges.len(), "capacity vector length");
        for (e, &c) in caps.iter().enumerate() {
            self.set_capacity(e, c)?;
        }
        Ok(())
    }

    /// Add a directed edge. Errors on out-of-range nodes, self loops,
    /// duplicates or negative capacity.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: f64,
    ) -> Result<EdgeId, TopologyError> {
        if src >= self.n {
            return Err(TopologyError::NodeOutOfRange {
                node: src,
                num_nodes: self.n,
            });
        }
        if dst >= self.n {
            return Err(TopologyError::NodeOutOfRange {
                node: dst,
                num_nodes: self.n,
            });
        }
        if src == dst {
            return Err(TopologyError::SelfLoop { node: src });
        }
        if self.index.contains_key(&(src, dst)) {
            return Err(TopologyError::DuplicateEdge { src, dst });
        }
        if capacity < 0.0 {
            return Err(TopologyError::NegativeCapacity { capacity });
        }
        let id = self.edges.len();
        self.edges.push(Edge { src, dst, capacity });
        self.index.insert((src, dst), id);
        self.out_adj[src].push((dst, id));
        Ok(id)
    }

    /// Add a bidirectional link (two directed edges of equal capacity).
    /// Returns `(forward, reverse)` edge ids.
    pub fn add_link(
        &mut self,
        u: NodeId,
        v: NodeId,
        capacity: f64,
    ) -> Result<(EdgeId, EdgeId), TopologyError> {
        let f = self.add_edge(u, v, capacity)?;
        let r = self.add_edge(v, u, capacity)?;
        Ok((f, r))
    }

    /// True when every node can reach every other node along directed edges
    /// with capacity above `cap_threshold` (treat ~zero-capacity edges as
    /// failed).
    pub fn is_strongly_connected(&self, cap_threshold: f64) -> bool {
        if self.n == 0 {
            return true;
        }
        // BFS forward and on the reverse graph.
        let reachable = |reverse: bool| {
            let mut seen = vec![false; self.n];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut count = 1;
            while let Some(u) = stack.pop() {
                for e in &self.edges {
                    if e.capacity <= cap_threshold {
                        continue;
                    }
                    let (a, b) = if reverse {
                        (e.dst, e.src)
                    } else {
                        (e.src, e.dst)
                    };
                    if a == u && !seen[b] {
                        seen[b] = true;
                        count += 1;
                        stack.push(b);
                    }
                }
            }
            count == self.n
        };
        reachable(false) && reachable(true)
    }

    /// Relabel nodes: node `i` becomes `perm[i]`. Edge order is preserved
    /// (edge `e` keeps its id but connects relabeled endpoints) — callers
    /// that also want edge reordering can compose with
    /// [`Topology::reorder_edges`].
    pub fn permute_nodes(&self, perm: &[NodeId]) -> Result<Topology, TopologyError> {
        if perm.len() != self.n {
            return Err(TopologyError::InvalidPermutation);
        }
        let mut seen = vec![false; self.n];
        for &p in perm {
            if p >= self.n || seen[p] {
                return Err(TopologyError::InvalidPermutation);
            }
            seen[p] = true;
        }
        let mut out = Topology::new(self.n);
        for e in &self.edges {
            out.add_edge(perm[e.src], perm[e.dst], e.capacity)?;
        }
        Ok(out)
    }

    /// Reorder edges: new edge `i` is old edge `order[i]`. Node ids are
    /// unchanged. Used for invariance tests.
    pub fn reorder_edges(&self, order: &[EdgeId]) -> Result<Topology, TopologyError> {
        if order.len() != self.edges.len() {
            return Err(TopologyError::InvalidPermutation);
        }
        let mut seen = vec![false; self.edges.len()];
        for &o in order {
            if o >= self.edges.len() || seen[o] {
                return Err(TopologyError::InvalidPermutation);
            }
            seen[o] = true;
        }
        let mut out = Topology::new(self.n);
        for &o in order {
            let e = &self.edges[o];
            out.add_edge(e.src, e.dst, e.capacity)?;
        }
        Ok(out)
    }

    /// The induced subgraph on nodes where `keep[u]` is true. Returns the
    /// subgraph plus `old -> new` node mapping (None for dropped nodes).
    pub fn subgraph(&self, keep: &[bool]) -> (Topology, Vec<Option<NodeId>>) {
        assert_eq!(keep.len(), self.n, "keep mask length");
        let mut map = vec![None; self.n];
        let mut next = 0usize;
        for (u, &k) in keep.iter().enumerate() {
            if k {
                map[u] = Some(next);
                next += 1;
            }
        }
        let mut out = Topology::new(next);
        for e in &self.edges {
            if let (Some(s), Some(d)) = (map[e.src], map[e.dst]) {
                out.add_edge(s, d, e.capacity)
                    .expect("subgraph preserves edge validity");
            }
        }
        (out, map)
    }

    /// Undirected link pairs `(u, v, forward_id, reverse_id)` with `u < v`,
    /// for links where both directions exist.
    pub fn links(&self) -> Vec<(NodeId, NodeId, EdgeId, EdgeId)> {
        let mut out = Vec::new();
        for (eid, e) in self.edges.iter().enumerate() {
            if e.src < e.dst {
                if let Some(rid) = self.edge_id(e.dst, e.src) {
                    out.push((e.src, e.dst, eid, rid));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut t = Topology::new(3);
        t.add_link(0, 1, 10.0).unwrap();
        t.add_link(1, 2, 20.0).unwrap();
        t.add_link(2, 0, 30.0).unwrap();
        t
    }

    #[test]
    fn build_and_query() {
        let t = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 6);
        assert_eq!(t.edge_id(0, 1), Some(0));
        assert_eq!(t.edge_id(1, 0), Some(1));
        assert_eq!(t.capacity(2), 20.0);
        assert_eq!(t.out_neighbors(0).len(), 2);
        assert_eq!(t.links().len(), 3);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut t = Topology::new(2);
        assert!(matches!(
            t.add_edge(0, 0, 1.0),
            Err(TopologyError::SelfLoop { .. })
        ));
        assert!(matches!(
            t.add_edge(0, 5, 1.0),
            Err(TopologyError::NodeOutOfRange { .. })
        ));
        t.add_edge(0, 1, 1.0).unwrap();
        assert!(matches!(
            t.add_edge(0, 1, 2.0),
            Err(TopologyError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            t.add_edge(1, 0, -1.0),
            Err(TopologyError::NegativeCapacity { .. })
        ));
    }

    #[test]
    fn connectivity() {
        let t = triangle();
        assert!(t.is_strongly_connected(0.0));
        let mut t2 = Topology::new(3);
        t2.add_link(0, 1, 1.0).unwrap();
        assert!(!t2.is_strongly_connected(0.0));
        // failing an edge by threshold
        let mut t3 = triangle();
        // cut both directions of links (1,2) and (2,0): node 2 isolated
        for (u, v) in [(1, 2), (2, 1), (2, 0), (0, 2)] {
            let e = t3.edge_id(u, v).unwrap();
            t3.set_capacity(e, 1e-6).unwrap();
        }
        assert!(!t3.is_strongly_connected(1e-3));
    }

    #[test]
    fn permute_roundtrip() {
        let t = triangle();
        let perm = vec![2, 0, 1];
        let p = t.permute_nodes(&perm).unwrap();
        // old edge 0 was 0->1 cap 10; now 2->0 cap 10.
        assert_eq!(p.edge(0).src, 2);
        assert_eq!(p.edge(0).dst, 0);
        assert_eq!(p.edge(0).capacity, 10.0);
        // inverse permutation restores
        let mut inv = vec![0; 3];
        for (i, &pi) in perm.iter().enumerate() {
            inv[pi] = i;
        }
        let back = p.permute_nodes(&inv).unwrap();
        assert_eq!(back.edge(0).src, 0);
        assert_eq!(back.edge(0).dst, 1);
    }

    #[test]
    fn permute_rejects_non_bijection() {
        let t = triangle();
        assert!(t.permute_nodes(&[0, 0, 1]).is_err());
        assert!(t.permute_nodes(&[0, 1]).is_err());
    }

    #[test]
    fn reorder_edges_keeps_structure() {
        let t = triangle();
        let order: Vec<usize> = (0..6).rev().collect();
        let r = t.reorder_edges(&order).unwrap();
        assert_eq!(r.num_edges(), 6);
        assert_eq!(r.edge(0).capacity, t.edge(5).capacity);
        assert_eq!(r.edge_id(0, 1), Some(5));
    }

    #[test]
    fn subgraph_drops_node() {
        let t = triangle();
        let (s, map) = t.subgraph(&[true, true, false]);
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.num_edges(), 2); // only 0<->1 survives
        assert_eq!(map, vec![Some(0), Some(1), None]);
    }

    #[test]
    fn set_capacities_bulk() {
        let mut t = triangle();
        let caps = vec![1.0; 6];
        t.set_capacities(&caps).unwrap();
        assert!(t.edges().iter().all(|e| e.capacity == 1.0));
    }
}
