//! Seeded synthetic WAN generators.
//!
//! Stand-ins for Topology-Zoo graphs we cannot ship (KDL, UsCarrier) and
//! building blocks for the AnonNet-like evolving WAN. The generators
//! guarantee connectivity (spanning backbone + extra shortcuts) and produce
//! WAN-like sparsity: average undirected degree around 2–3, a few discrete
//! capacity tiers.

use rand::Rng;

use crate::graph::Topology;

/// Configuration for [`geometric_wan`].
#[derive(Clone, Copy, Debug)]
pub struct GeometricConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of undirected links (must be >= nodes - 1).
    pub links: usize,
    /// Capacity tiers sampled per link (e.g. `[100.0, 200.0, 400.0]`).
    pub capacity_tiers: [f64; 3],
}

/// Generate a connected random-geometric WAN: nodes placed uniformly in the
/// unit square, a spanning tree built greedily over short pairs, then the
/// shortest remaining candidate pairs added until `links` undirected links
/// exist. Capacities are sampled from the configured tiers (higher tiers
/// more likely on shorter links, mimicking metro vs long-haul).
pub fn geometric_wan<R: Rng>(cfg: GeometricConfig, rng: &mut R) -> Topology {
    assert!(cfg.nodes >= 2, "need at least 2 nodes");
    assert!(
        cfg.links >= cfg.nodes - 1,
        "links {} cannot connect {} nodes",
        cfg.links,
        cfg.nodes
    );
    let n = cfg.nodes;
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let dist = |a: usize, b: usize| -> f64 {
        let dx = pts[a].0 - pts[b].0;
        let dy = pts[a].1 - pts[b].1;
        (dx * dx + dy * dy).sqrt()
    };

    let mut topo = Topology::new(n);

    // Spanning tree: Prim's algorithm over Euclidean distance.
    let mut in_tree = vec![false; n];
    in_tree[0] = true;
    let mut tree_edges: Vec<(usize, usize)> = Vec::new();
    for _ in 1..n {
        let mut best: Option<(f64, usize, usize)> = None;
        for u in 0..n {
            if !in_tree[u] {
                continue;
            }
            for v in 0..n {
                if in_tree[v] {
                    continue;
                }
                let d = dist(u, v);
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, u, v));
                }
            }
        }
        let (_, u, v) = best.expect("tree step");
        in_tree[v] = true;
        tree_edges.push((u, v));
    }

    let sample_cap = |rng: &mut R, d: f64| -> f64 {
        // shorter links more likely to be high-capacity
        let tier = if rng.gen::<f64>() < (1.0 - d).clamp(0.1, 0.9) {
            2
        } else if rng.gen::<f64>() < 0.5 {
            1
        } else {
            0
        };
        cfg.capacity_tiers[tier]
    };

    for &(u, v) in &tree_edges {
        let c = sample_cap(rng, dist(u, v));
        topo.add_link(u, v, c).expect("tree link");
    }

    // Extra shortcuts: candidate pairs sorted by distance.
    let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if topo.edge_id(u, v).is_none() {
                candidates.push((dist(u, v), u, v));
            }
        }
    }
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut added = n - 1;
    // Take from the shortest 3x pool at random for variety.
    let pool = candidates.len().min((cfg.links - added) * 3 + 8);
    let mut pool: Vec<(f64, usize, usize)> = candidates.into_iter().take(pool).collect();
    while added < cfg.links && !pool.is_empty() {
        let i = rng.gen_range(0..pool.len());
        let (d, u, v) = pool.swap_remove(i);
        if topo.edge_id(u, v).is_some() {
            continue;
        }
        let c = sample_cap(rng, d);
        topo.add_link(u, v, c).expect("shortcut link");
        added += 1;
    }
    debug_assert!(topo.is_strongly_connected(0.0));
    topo
}

/// A deterministic "ring of rings" topology useful for tests and examples:
/// `rings` rings of `ring_size` nodes each, adjacent rings joined by two
/// links. All links have capacity `capacity`.
pub fn ring_of_rings(rings: usize, ring_size: usize, capacity: f64) -> Topology {
    assert!(rings >= 1 && ring_size >= 3);
    let n = rings * ring_size;
    let mut t = Topology::new(n);
    for r in 0..rings {
        let base = r * ring_size;
        for i in 0..ring_size {
            let u = base + i;
            let v = base + (i + 1) % ring_size;
            t.add_link(u, v, capacity).expect("ring link");
        }
    }
    for r in 0..rings.saturating_sub(1) {
        let a = r * ring_size;
        let b = (r + 1) * ring_size;
        t.add_link(a, b, capacity).expect("bridge link");
        t.add_link(a + ring_size / 2, b + ring_size / 2, capacity)
            .expect("bridge link 2");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn geometric_is_connected_and_sized() {
        let cfg = GeometricConfig {
            nodes: 40,
            links: 60,
            capacity_tiers: [100.0, 200.0, 400.0],
        };
        let mut rng = StdRng::seed_from_u64(7);
        let t = geometric_wan(cfg, &mut rng);
        assert_eq!(t.num_nodes(), 40);
        assert_eq!(t.num_edges(), 120); // directed
        assert!(t.is_strongly_connected(0.0));
        // capacities come from tiers
        for e in t.edges() {
            assert!(cfg.capacity_tiers.contains(&e.capacity));
        }
    }

    #[test]
    fn geometric_deterministic_under_seed() {
        let cfg = GeometricConfig {
            nodes: 20,
            links: 30,
            capacity_tiers: [1.0, 2.0, 4.0],
        };
        let t1 = geometric_wan(cfg, &mut StdRng::seed_from_u64(3));
        let t2 = geometric_wan(cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(t1.num_edges(), t2.num_edges());
        for (a, b) in t1.edges().iter().zip(t2.edges()) {
            assert_eq!((a.src, a.dst), (b.src, b.dst));
            assert_eq!(a.capacity, b.capacity);
        }
    }

    #[test]
    fn ring_of_rings_structure() {
        let t = ring_of_rings(3, 5, 10.0);
        assert_eq!(t.num_nodes(), 15);
        assert!(t.is_strongly_connected(0.0));
        // 3 rings x 5 links + 2*2 bridges = 19 undirected links
        assert_eq!(t.links().len(), 19);
    }
}
