//! Failure injection and perturbation scenarios (§5.4, §5.5 of the paper).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{EdgeId, Topology};

/// A partial failure of one undirected link: both directions of the link
/// lose `severity` (in `[0, 1)`) of their capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartialFailure {
    /// Forward directed-edge id of the link.
    pub forward: EdgeId,
    /// Reverse directed-edge id of the link.
    pub reverse: EdgeId,
    /// Fraction of capacity removed, in `[0, 1)`.
    pub severity: f64,
}

/// Ids of both directions of every undirected link.
pub fn undirected_link_ids(topo: &Topology) -> Vec<(EdgeId, EdgeId)> {
    topo.links().iter().map(|&(_, _, f, r)| (f, r)).collect()
}

/// Apply a partial failure, returning a perturbed copy of the topology.
pub fn fail_link_partial(topo: &Topology, failure: PartialFailure) -> Topology {
    assert!(
        (0.0..1.0).contains(&failure.severity),
        "severity must be in [0, 1)"
    );
    let mut out = topo.clone();
    for e in [failure.forward, failure.reverse] {
        let remaining = out.capacity(e) * (1.0 - failure.severity);
        out.set_capacity(e, remaining).expect("edge exists");
    }
    out
}

/// Generate `count` random single-link partial-failure scenarios with
/// severity drawn uniformly from `[min_severity, max_severity]` — the
/// paper's Fig 8 setup uses 40 scenarios with severity in `[0.5, 0.9]`.
pub fn random_partial_failures<R: Rng>(
    topo: &Topology,
    rng: &mut R,
    count: usize,
    min_severity: f64,
    max_severity: f64,
) -> Vec<PartialFailure> {
    assert!(min_severity <= max_severity && max_severity < 1.0);
    let links = undirected_link_ids(topo);
    assert!(!links.is_empty(), "no undirected links to fail");
    (0..count)
        .map(|_| {
            let &(forward, reverse) = links.choose(rng).expect("nonempty");
            let severity = rng.gen_range(min_severity..=max_severity);
            PartialFailure {
                forward,
                reverse,
                severity,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn square() -> Topology {
        let mut t = Topology::new(4);
        t.add_link(0, 1, 10.0).unwrap();
        t.add_link(1, 2, 10.0).unwrap();
        t.add_link(2, 3, 10.0).unwrap();
        t.add_link(3, 0, 10.0).unwrap();
        t
    }

    #[test]
    fn partial_failure_scales_both_directions() {
        let t = square();
        let (f, r) = undirected_link_ids(&t)[0];
        let failed = fail_link_partial(
            &t,
            PartialFailure {
                forward: f,
                reverse: r,
                severity: 0.7,
            },
        );
        assert!((failed.capacity(f) - 3.0).abs() < 1e-9);
        assert!((failed.capacity(r) - 3.0).abs() < 1e-9);
        // other links untouched
        assert_eq!(failed.capacity(2), 10.0);
        // original unchanged
        assert_eq!(t.capacity(f), 10.0);
    }

    #[test]
    fn random_scenarios_within_bounds_and_seeded() {
        let t = square();
        let mut rng = StdRng::seed_from_u64(42);
        let s1 = random_partial_failures(&t, &mut rng, 20, 0.5, 0.9);
        assert_eq!(s1.len(), 20);
        assert!(s1.iter().all(|f| (0.5..=0.9).contains(&f.severity)));
        let mut rng2 = StdRng::seed_from_u64(42);
        let s2 = random_partial_failures(&t, &mut rng2, 20, 0.5, 0.9);
        assert_eq!(s1, s2);
    }
}
