//! # harp-chaos
//!
//! Deterministic fault injection for the HARP stack. A [`FaultPlan`] is a
//! seeded, parseable description of *which* faults fire *when*: a NaN
//! pushed into the gradients at step N, checkpoint bytes corrupted on the
//! Nth write, a worker thread killed mid-epoch, a serve connection dropped
//! or delayed. Library code asks the plan at well-defined injection sites;
//! with no plan installed every site is a single branch on `None`.
//!
//! Two ways to arm a plan:
//!
//! * explicitly — construct a [`FaultPlan`] (or parse one) and hand it to
//!   the component under test (`TrainConfig::chaos`, `ServeConfig::chaos`,
//!   [`harp_nn::save_snapshot`]'s `chaos` argument). This is what tests
//!   use: no global state, safe under parallel test threads.
//! * via the environment — set `HARP_FAULT` and the process-wide plan
//!   ([`global_plan`]) is parsed once; components fall back to it when no
//!   explicit plan was given. This is what CI chaos scenarios use.
//!
//! ## `HARP_FAULT` grammar
//!
//! Semicolon-separated fault specs, each `name@key=value,key=value`:
//!
//! ```text
//! nan-grad@step=3                      inject NaN into gradients at global step 3
//! kill-worker@epoch=1,worker=1         panic in pool worker 1 during epoch 1
//! corrupt-checkpoint@write=2,mode=flip corrupt the 2nd snapshot write (mode: flip|truncate)
//! drop-conn@nth=4                      close the 4th accepted serve connection immediately
//! delay-conn@nth=2,ms=500              stall the 2nd accepted connection 500 ms before serving
//! drop-conn@every=32                   drop one in every 32 accepted connections, forever
//! delay-conn@every=16,ms=50            stall one in every 16 accepted connections 50 ms
//! abort@epoch=2                        abort training after epoch 2 (simulated crash)
//! kill-trainer@epoch=1,phase=forward   real SIGKILL of the trainer process at a phase
//! kill-trainer@phase=ship              (phase: forward|checkpoint|ship; epoch ignored for ship)
//! hang-trainer@epoch=1                 trainer livelocks before epoch 1 (watchdog drill)
//! garble-ipc@frame=2                   mangle the trainer's 2nd outgoing IPC frame
//! slow-ipc@every=4,ms=50               stall every 4th outgoing IPC frame 50 ms (periodic)
//! seed=42                              seed for corruption byte positions (default 0)
//! ```
//!
//! Counters (`step`, `write`, `nth`, `epoch`) are 0-based and count from
//! process/plan start. Every `nth`/`step`-style fault fires **once**; a
//! plan is exhausted when all of its one-shot faults have fired. The
//! `every=` conn faults are **periodic open-loop schedules** for fleet
//! load tests: they re-fire on every Kth accepted connection (1-based:
//! connections K, 2K, ...) and never exhaust. Parsing is strict — an
//! unknown fault name or malformed parameter is an error (surfaced loudly
//! via `chaos.bad_plan`), never silently ignored: a chaos run that
//! silently tests nothing is worse than no chaos run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Which trainer phase a [`FaultKind::KillTrainer`] fault strikes in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainerPhase {
    /// Inside a forward/backward pass of the target epoch.
    Forward,
    /// Right before the target epoch's snapshot write.
    Checkpoint,
    /// After the parameter file is written, before the ship frame.
    Ship,
}

impl TrainerPhase {
    /// Stable name used in the plan grammar and events.
    pub fn name(self) -> &'static str {
        match self {
            TrainerPhase::Forward => "forward",
            TrainerPhase::Checkpoint => "checkpoint",
            TrainerPhase::Ship => "ship",
        }
    }
}

/// How [`FaultKind::CorruptCheckpoint`] mangles the byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptMode {
    /// Truncate the buffer to half its length (torn write).
    Truncate,
    /// Flip one byte at a seed-determined offset (bit rot).
    Flip,
}

/// One fault in a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Poison the merged gradients with NaN at global optimizer step `step`.
    NanGrad {
        /// 0-based global step at which the gradients are poisoned.
        step: u64,
    },
    /// Panic inside pool worker `worker` during epoch `epoch`.
    KillWorker {
        /// 0-based training epoch in which the worker dies.
        epoch: u64,
        /// 0-based worker (chunk) index that panics.
        worker: u64,
    },
    /// Corrupt the bytes of the `write`-th snapshot write.
    CorruptCheckpoint {
        /// 0-based count of snapshot writes before the corrupted one.
        write: u64,
        /// How the bytes are mangled.
        mode: CorruptMode,
    },
    /// Close the `nth` accepted serve connection without reading it.
    DropConn {
        /// 0-based accepted-connection index.
        nth: u64,
    },
    /// Stall the `nth` accepted serve connection for `ms` before serving.
    DelayConn {
        /// 0-based accepted-connection index.
        nth: u64,
        /// Delay in milliseconds.
        ms: u64,
    },
    /// Drop one in every `every` accepted connections (periodic, never
    /// exhausts — an open-loop fault schedule for fleet load tests).
    DropConnEvery {
        /// Period in accepted connections (>= 1; fires on the `every`th,
        /// `2*every`th, ... connection, 1-based).
        every: u64,
    },
    /// Stall one in every `every` accepted connections for `ms` (periodic,
    /// never exhausts).
    DelayConnEvery {
        /// Period in accepted connections (>= 1).
        every: u64,
        /// Delay in milliseconds.
        ms: u64,
    },
    /// Abort training right after epoch `epoch` completes (simulates a
    /// crash between checkpoint and the next epoch; the caller surfaces it
    /// as a typed error, so in-process tests can exercise kill+resume).
    Abort {
        /// 0-based epoch after which training aborts.
        epoch: u64,
    },
    /// SIGKILL the trainer **process** (for real — no unwinding, no
    /// cleanup) at `phase` of epoch `epoch`. Only meaningful inside an
    /// out-of-process trainer under `harp-super` supervision.
    KillTrainer {
        /// 0-based epoch targeted (ignored for [`TrainerPhase::Ship`]).
        epoch: u64,
        /// Where inside the epoch the kill lands.
        phase: TrainerPhase,
    },
    /// Livelock the trainer process before epoch `epoch` starts: it keeps
    /// running but stops speaking, so only the supervisor's heartbeat
    /// watchdog can reclaim it.
    HangTrainer {
        /// 0-based epoch before which the trainer goes silent.
        epoch: u64,
    },
    /// Mangle the bytes of the trainer's `frame`-th outgoing IPC frame
    /// (0-based, counted after the config handshake) so the supervisor
    /// sees a framing-level protocol error.
    GarbleIpc {
        /// 0-based outgoing-frame index to garble.
        frame: u64,
    },
    /// Stall every `every`-th outgoing IPC frame for `ms` (periodic, never
    /// exhausts) — latency chaos for the heartbeat watchdog's margins.
    SlowIpc {
        /// Period in outgoing frames (>= 1; fires on the `every`th,
        /// `2*every`th, ... frame, 1-based).
        every: u64,
        /// Stall in milliseconds.
        ms: u64,
    },
}

impl FaultKind {
    /// Short stable name used in events and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::NanGrad { .. } => "nan-grad",
            FaultKind::KillWorker { .. } => "kill-worker",
            FaultKind::CorruptCheckpoint { .. } => "corrupt-checkpoint",
            FaultKind::DropConn { .. } => "drop-conn",
            FaultKind::DelayConn { .. } => "delay-conn",
            FaultKind::DropConnEvery { .. } => "drop-conn-every",
            FaultKind::DelayConnEvery { .. } => "delay-conn-every",
            FaultKind::Abort { .. } => "abort",
            FaultKind::KillTrainer { .. } => "kill-trainer",
            FaultKind::HangTrainer { .. } => "hang-trainer",
            FaultKind::GarbleIpc { .. } => "garble-ipc",
            FaultKind::SlowIpc { .. } => "slow-ipc",
        }
    }

    /// True for periodic faults that re-fire on a schedule and are never
    /// counted toward [`FaultPlan::exhausted`].
    pub fn is_periodic(&self) -> bool {
        matches!(
            self,
            FaultKind::DropConnEvery { .. }
                | FaultKind::DelayConnEvery { .. }
                | FaultKind::SlowIpc { .. }
        )
    }
}

/// A fault plus its fired-once latch.
#[derive(Debug)]
struct Armed {
    kind: FaultKind,
    fired: AtomicBool,
}

/// What [`FaultPlan::conn_fault`] tells the serve accept loop to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnFault {
    /// Close the connection without serving it.
    Drop,
    /// Sleep this many milliseconds before serving the connection.
    DelayMs(u64),
}

/// What [`FaultPlan::ipc_fault`] tells the trainer's frame writer to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpcFault {
    /// Mangle the frame bytes before writing (the supervisor must surface
    /// a typed protocol error, never a panic).
    Garble,
    /// Sleep this many milliseconds before writing the frame.
    DelayMs(u64),
}

/// A deterministic, seeded set of faults with fired-once semantics.
///
/// All query methods take `&self` (latches and counters are atomics), so a
/// plan can be shared via [`Arc`] across trainer, checkpoint writer, pool
/// workers, and serve threads.
#[derive(Debug)]
pub struct FaultPlan {
    faults: Vec<Armed>,
    seed: u64,
    /// Snapshot writes observed so far (drives `corrupt-checkpoint`).
    writes: AtomicU64,
    /// Serve connections observed so far (drives `drop-conn`/`delay-conn`).
    conns: AtomicU64,
    /// Outgoing IPC frames observed so far (drives `garble-ipc`/`slow-ipc`).
    frames: AtomicU64,
}

/// Why a `HARP_FAULT` string failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending spec fragment.
    pub spec: String,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec `{}`: {}", self.spec, self.reason)
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// A plan over `faults` with corruption seed `seed`.
    pub fn new(faults: Vec<FaultKind>, seed: u64) -> Self {
        FaultPlan {
            faults: faults
                .into_iter()
                .map(|kind| Armed {
                    kind,
                    fired: AtomicBool::new(false),
                })
                .collect(),
            seed,
            writes: AtomicU64::new(0),
            conns: AtomicU64::new(0),
            frames: AtomicU64::new(0),
        }
    }

    /// Parse the `HARP_FAULT` grammar (see the crate docs).
    pub fn parse(s: &str) -> Result<Self, PlanParseError> {
        let mut faults = Vec::new();
        let mut seed = 0u64;
        for spec in s.split(';') {
            let spec = spec.trim();
            if spec.is_empty() {
                continue;
            }
            if let Some(v) = spec.strip_prefix("seed=") {
                seed = parse_u64(spec, "seed", v)?;
                continue;
            }
            let (name, params) = match spec.split_once('@') {
                Some((n, p)) => (n.trim(), p),
                None => (spec, ""),
            };
            let get = |key: &str| -> Result<Option<u64>, PlanParseError> {
                for kv in params.split(',') {
                    let kv = kv.trim();
                    if kv.is_empty() {
                        continue;
                    }
                    let (k, v) = kv.split_once('=').ok_or_else(|| PlanParseError {
                        spec: spec.to_string(),
                        reason: format!("parameter `{kv}` is not key=value"),
                    })?;
                    if k.trim() == key {
                        return Ok(Some(parse_u64(spec, key, v)?));
                    }
                }
                Ok(None)
            };
            let require = |v: Option<u64>, key: &str| {
                v.ok_or_else(|| PlanParseError {
                    spec: spec.to_string(),
                    reason: format!("missing required parameter `{key}`"),
                })
            };
            let kind = match name {
                "nan-grad" => FaultKind::NanGrad {
                    step: require(get("step")?, "step")?,
                },
                "kill-worker" => FaultKind::KillWorker {
                    epoch: require(get("epoch")?, "epoch")?,
                    worker: require(get("worker")?, "worker")?,
                },
                "corrupt-checkpoint" => {
                    let write = require(get("write")?, "write")?;
                    let mode = match mode_param(params) {
                        None | Some("flip") => CorruptMode::Flip,
                        Some("truncate") => CorruptMode::Truncate,
                        Some(other) => {
                            return Err(PlanParseError {
                                spec: spec.to_string(),
                                reason: format!("unknown mode `{other}` (flip|truncate)"),
                            })
                        }
                    };
                    FaultKind::CorruptCheckpoint { write, mode }
                }
                "drop-conn" => match get("every")? {
                    Some(every) if every >= 1 => FaultKind::DropConnEvery { every },
                    Some(_) => {
                        return Err(PlanParseError {
                            spec: spec.to_string(),
                            reason: "`every` must be >= 1".to_string(),
                        })
                    }
                    None => FaultKind::DropConn {
                        nth: require(get("nth")?, "nth")?,
                    },
                },
                "delay-conn" => match get("every")? {
                    Some(every) if every >= 1 => FaultKind::DelayConnEvery {
                        every,
                        ms: require(get("ms")?, "ms")?,
                    },
                    Some(_) => {
                        return Err(PlanParseError {
                            spec: spec.to_string(),
                            reason: "`every` must be >= 1".to_string(),
                        })
                    }
                    None => FaultKind::DelayConn {
                        nth: require(get("nth")?, "nth")?,
                        ms: require(get("ms")?, "ms")?,
                    },
                },
                "abort" => FaultKind::Abort {
                    epoch: require(get("epoch")?, "epoch")?,
                },
                "kill-trainer" => {
                    let phase = match str_param(params, "phase") {
                        Some("forward") => TrainerPhase::Forward,
                        Some("checkpoint") => TrainerPhase::Checkpoint,
                        Some("ship") => TrainerPhase::Ship,
                        Some(other) => {
                            return Err(PlanParseError {
                                spec: spec.to_string(),
                                reason: format!(
                                    "unknown phase `{other}` (forward|checkpoint|ship)"
                                ),
                            })
                        }
                        None => {
                            return Err(PlanParseError {
                                spec: spec.to_string(),
                                reason: "missing required parameter `phase`".to_string(),
                            })
                        }
                    };
                    let epoch = match phase {
                        // ship happens once, after the last epoch
                        TrainerPhase::Ship => get("epoch")?.unwrap_or(0),
                        _ => require(get("epoch")?, "epoch")?,
                    };
                    FaultKind::KillTrainer { epoch, phase }
                }
                "hang-trainer" => FaultKind::HangTrainer {
                    epoch: require(get("epoch")?, "epoch")?,
                },
                "garble-ipc" => FaultKind::GarbleIpc {
                    frame: require(get("frame")?, "frame")?,
                },
                "slow-ipc" => match require(get("every")?, "every")? {
                    every if every >= 1 => FaultKind::SlowIpc {
                        every,
                        ms: require(get("ms")?, "ms")?,
                    },
                    _ => {
                        return Err(PlanParseError {
                            spec: spec.to_string(),
                            reason: "`every` must be >= 1".to_string(),
                        })
                    }
                },
                other => {
                    return Err(PlanParseError {
                        spec: spec.to_string(),
                        reason: format!("unknown fault `{other}`"),
                    })
                }
            };
            faults.push(kind);
        }
        Ok(FaultPlan::new(faults, seed))
    }

    /// The corruption seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults in the plan (fired or not).
    pub fn faults(&self) -> Vec<FaultKind> {
        self.faults.iter().map(|a| a.kind.clone()).collect()
    }

    /// True when every one-shot fault in the plan has fired. Periodic
    /// (`every=`) faults never exhaust and are not counted.
    pub fn exhausted(&self) -> bool {
        self.faults
            .iter()
            .filter(|a| !a.kind.is_periodic())
            .all(|a| a.fired.load(Ordering::SeqCst))
    }

    /// Find the first un-fired fault matching `pred`, latch it as fired,
    /// emit a `chaos.fire` event, and return it.
    fn fire(&self, pred: impl Fn(&FaultKind) -> bool) -> Option<FaultKind> {
        for armed in &self.faults {
            if pred(&armed.kind)
                && armed
                    .fired
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                harp_obs::event("chaos.fire")
                    .field("fault", armed.kind.name())
                    .field_with("detail", || format!("{:?}", armed.kind).into())
                    .emit();
                return Some(armed.kind.clone());
            }
        }
        None
    }

    /// True when a `nan-grad` fault fires at global optimizer step `step`.
    pub fn nan_grad_at(&self, step: u64) -> bool {
        self.fire(|k| matches!(k, FaultKind::NanGrad { step: s } if *s == step))
            .is_some()
    }

    /// True when an `abort` fault fires right after `epoch`.
    pub fn abort_after_epoch(&self, epoch: u64) -> bool {
        self.fire(|k| matches!(k, FaultKind::Abort { epoch: e } if *e == epoch))
            .is_some()
    }

    /// Panic (a deliberate, labelled chaos panic) when a `kill-worker`
    /// fault targets `(epoch, worker)`. Call from inside pool workers; the
    /// runtime's containment layer must turn it into a structured error.
    pub fn maybe_kill_worker(&self, epoch: u64, worker: u64) {
        let hit = self.fire(
            |k| matches!(k, FaultKind::KillWorker { epoch: e, worker: w } if *e == epoch && *w == worker),
        );
        if hit.is_some() {
            // This fault IS an injected worker panic; containment is
            // what's under test. lint: allow(panic) — deliberate chaos
            panic!("harp-chaos: injected kill-worker fault (epoch {epoch}, worker {worker})");
        }
    }

    /// Count one snapshot write and corrupt `bytes` in place when a
    /// `corrupt-checkpoint` fault targets this write. Returns the mode
    /// applied, if any.
    pub fn corrupt_checkpoint_write(&self, bytes: &mut Vec<u8>) -> Option<CorruptMode> {
        let write = self.writes.fetch_add(1, Ordering::SeqCst);
        let hit = self
            .fire(|k| matches!(k, FaultKind::CorruptCheckpoint { write: w, .. } if *w == write))?;
        let FaultKind::CorruptCheckpoint { mode, .. } = hit else {
            return None;
        };
        match mode {
            CorruptMode::Truncate => bytes.truncate(bytes.len() / 2),
            CorruptMode::Flip => {
                if !bytes.is_empty() {
                    let pos = (splitmix64(self.seed ^ write) as usize) % bytes.len();
                    bytes[pos] ^= 0x20; // case-flip keeps it printable but wrong
                }
            }
        }
        Some(mode)
    }

    /// Count one accepted serve connection and return the fault to apply
    /// to it, if any. One-shot `nth=` faults take precedence (and latch);
    /// otherwise the first matching periodic `every=` schedule fires —
    /// without latching, so it recurs every period.
    pub fn conn_fault(&self) -> Option<ConnFault> {
        let conn = self.conns.fetch_add(1, Ordering::SeqCst);
        let hit = self.fire(|k| {
            matches!(k, FaultKind::DropConn { nth } if *nth == conn)
                || matches!(k, FaultKind::DelayConn { nth, .. } if *nth == conn)
        });
        match hit {
            Some(FaultKind::DropConn { .. }) => return Some(ConnFault::Drop),
            Some(FaultKind::DelayConn { ms, .. }) => return Some(ConnFault::DelayMs(ms)),
            _ => {}
        }
        for armed in &self.faults {
            // 1-based period: connection indices every-1, 2*every-1, ...
            let fault = match armed.kind {
                FaultKind::DropConnEvery { every } if (conn + 1).is_multiple_of(every) => {
                    ConnFault::Drop
                }
                FaultKind::DelayConnEvery { every, ms } if (conn + 1).is_multiple_of(every) => {
                    ConnFault::DelayMs(ms)
                }
                _ => continue,
            };
            harp_obs::event("chaos.fire")
                .field("fault", armed.kind.name())
                .field("conn", conn)
                .emit();
            return Some(fault);
        }
        None
    }

    /// True (latched) when a `kill-trainer` fault targets `(epoch, phase)`
    /// — the testable predicate behind [`FaultPlan::maybe_kill_trainer`].
    /// For [`TrainerPhase::Ship`] the epoch is ignored: shipping happens
    /// once, after the last epoch.
    pub fn kill_trainer_due(&self, epoch: u64, phase: TrainerPhase) -> bool {
        self.fire(|k| {
            matches!(k, FaultKind::KillTrainer { epoch: e, phase: p }
                if *p == phase && (phase == TrainerPhase::Ship || *e == epoch))
        })
        .is_some()
    }

    /// SIGKILL the **current process** when a `kill-trainer` fault targets
    /// `(epoch, phase)`. This is a real, uncatchable kill — no unwinding,
    /// no destructors — exactly the failure a supervisor must absorb. Only
    /// arm it inside an out-of-process trainer.
    pub fn maybe_kill_trainer(&self, epoch: u64, phase: TrainerPhase) {
        if self.kill_trainer_due(epoch, phase) {
            harp_super::kill_self_hard();
        }
    }

    /// True (latched) when a `hang-trainer` fault targets `epoch`. The
    /// caller implements the livelock (the fault is a scripted silence,
    /// not a kill).
    pub fn hang_trainer_due(&self, epoch: u64) -> bool {
        self.fire(|k| matches!(k, FaultKind::HangTrainer { epoch: e } if *e == epoch))
            .is_some()
    }

    /// Count one outgoing IPC frame and return the fault to apply to it,
    /// if any. One-shot `garble-ipc@frame=` faults take precedence (and
    /// latch); otherwise the first matching periodic `slow-ipc@every=`
    /// schedule fires without latching.
    pub fn ipc_fault(&self) -> Option<IpcFault> {
        let frame = self.frames.fetch_add(1, Ordering::SeqCst);
        if self
            .fire(|k| matches!(k, FaultKind::GarbleIpc { frame: f } if *f == frame))
            .is_some()
        {
            return Some(IpcFault::Garble);
        }
        for armed in &self.faults {
            // 1-based period, like the periodic conn faults
            if let FaultKind::SlowIpc { every, ms } = armed.kind {
                if (frame + 1).is_multiple_of(every) {
                    harp_obs::event("chaos.fire")
                        .field("fault", armed.kind.name())
                        .field("frame", frame)
                        .emit();
                    return Some(IpcFault::DelayMs(ms));
                }
            }
        }
        None
    }
}

fn mode_param(params: &str) -> Option<&str> {
    str_param(params, "mode")
}

fn str_param<'a>(params: &'a str, key: &str) -> Option<&'a str> {
    params.split(',').find_map(|kv| {
        let (k, v) = kv.trim().split_once('=')?;
        (k.trim() == key).then(|| v.trim())
    })
}

fn parse_u64(spec: &str, key: &str, v: &str) -> Result<u64, PlanParseError> {
    v.trim().parse::<u64>().map_err(|_| PlanParseError {
        spec: spec.to_string(),
        reason: format!("`{key}` value `{}` is not a non-negative integer", v.trim()),
    })
}

/// SplitMix64 — a tiny, well-mixed hash used to pick corruption offsets
/// deterministically from `(seed, write index)`.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The process-wide plan parsed once from `HARP_FAULT`. `None` when the
/// variable is unset, empty, or fails to parse — a parse failure is shouted
/// through a `chaos.bad_plan` warning (reaching stderr even with the obs
/// sink off) so a typo'd scenario never silently tests nothing.
pub fn global_plan() -> Option<Arc<FaultPlan>> {
    static GLOBAL: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let raw = std::env::var("HARP_FAULT").ok()?;
            if raw.trim().is_empty() {
                return None;
            }
            match FaultPlan::parse(&raw) {
                Ok(plan) => {
                    harp_obs::event("chaos.armed")
                        .field("plan", raw.clone())
                        .field("faults", plan.faults.len())
                        .emit();
                    Some(Arc::new(plan))
                }
                Err(e) => {
                    harp_obs::warn_always(
                        "chaos.bad_plan",
                        &[
                            ("value", raw.clone().into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                    None
                }
            }
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan = FaultPlan::parse(
            "nan-grad@step=3; kill-worker@epoch=1,worker=2; \
             corrupt-checkpoint@write=0,mode=truncate; drop-conn@nth=4; \
             delay-conn@nth=2,ms=500; abort@epoch=2; seed=42",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(
            plan.faults(),
            vec![
                FaultKind::NanGrad { step: 3 },
                FaultKind::KillWorker {
                    epoch: 1,
                    worker: 2
                },
                FaultKind::CorruptCheckpoint {
                    write: 0,
                    mode: CorruptMode::Truncate
                },
                FaultKind::DropConn { nth: 4 },
                FaultKind::DelayConn { nth: 2, ms: 500 },
                FaultKind::Abort { epoch: 2 },
            ]
        );
    }

    #[test]
    fn parses_process_level_faults() {
        let plan = FaultPlan::parse(
            "kill-trainer@epoch=1,phase=forward; kill-trainer@epoch=2,phase=checkpoint; \
             kill-trainer@phase=ship; hang-trainer@epoch=0; garble-ipc@frame=2; \
             slow-ipc@every=4,ms=50",
        )
        .unwrap();
        assert_eq!(
            plan.faults(),
            vec![
                FaultKind::KillTrainer {
                    epoch: 1,
                    phase: TrainerPhase::Forward
                },
                FaultKind::KillTrainer {
                    epoch: 2,
                    phase: TrainerPhase::Checkpoint
                },
                FaultKind::KillTrainer {
                    epoch: 0,
                    phase: TrainerPhase::Ship
                },
                FaultKind::HangTrainer { epoch: 0 },
                FaultKind::GarbleIpc { frame: 2 },
                FaultKind::SlowIpc { every: 4, ms: 50 },
            ]
        );
    }

    #[test]
    fn kill_trainer_latches_per_phase_and_epoch() {
        let plan = FaultPlan::parse("kill-trainer@epoch=1,phase=forward; kill-trainer@phase=ship")
            .unwrap();
        assert!(!plan.kill_trainer_due(0, TrainerPhase::Forward));
        assert!(!plan.kill_trainer_due(1, TrainerPhase::Checkpoint));
        assert!(plan.kill_trainer_due(1, TrainerPhase::Forward));
        assert!(!plan.kill_trainer_due(1, TrainerPhase::Forward), "latched");
        // ship matches regardless of epoch
        assert!(plan.kill_trainer_due(99, TrainerPhase::Ship));
        assert!(plan.exhausted());
    }

    #[test]
    fn hang_trainer_latches_at_target_epoch() {
        let plan = FaultPlan::parse("hang-trainer@epoch=2").unwrap();
        assert!(!plan.hang_trainer_due(0));
        assert!(!plan.hang_trainer_due(1));
        assert!(plan.hang_trainer_due(2));
        assert!(!plan.hang_trainer_due(2), "latched");
    }

    #[test]
    fn ipc_faults_count_frames_and_slow_is_periodic() {
        let plan = FaultPlan::parse("garble-ipc@frame=1; slow-ipc@every=3,ms=20").unwrap();
        assert_eq!(plan.ipc_fault(), None); // frame 0
        assert_eq!(plan.ipc_fault(), Some(IpcFault::Garble)); // frame 1
        assert_eq!(plan.ipc_fault(), Some(IpcFault::DelayMs(20))); // frame 2 (3rd)
        assert_eq!(plan.ipc_fault(), None); // frame 3
        assert_eq!(plan.ipc_fault(), None); // frame 4
        assert_eq!(plan.ipc_fault(), Some(IpcFault::DelayMs(20))); // frame 5 (6th)
        assert!(plan.exhausted(), "slow-ipc is periodic, garble latched");
    }

    #[test]
    fn rejects_unknown_and_malformed_specs() {
        for bad in [
            "explode@now=1",
            "nan-grad@step=soon",
            "nan-grad",
            "kill-worker@epoch=1",
            "corrupt-checkpoint@write=0,mode=shred",
            "delay-conn@nth=1",
            "seed=banana",
            "kill-trainer@epoch=1",
            "kill-trainer@epoch=1,phase=sideways",
            "kill-trainer@phase=forward",
            "hang-trainer",
            "garble-ipc@frame=soon",
            "slow-ipc@every=0,ms=5",
            "slow-ipc@every=2",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(!err.to_string().is_empty(), "{bad}");
        }
    }

    #[test]
    fn empty_and_whitespace_plans_are_valid_and_inert() {
        for s in ["", "  ", ";;", " ; "] {
            let plan = FaultPlan::parse(s).unwrap();
            assert!(plan.exhausted(), "{s:?} should have no faults");
            assert!(!plan.nan_grad_at(0));
        }
    }

    #[test]
    fn faults_fire_exactly_once_at_their_trigger() {
        let plan = FaultPlan::parse("nan-grad@step=2").unwrap();
        assert!(!plan.nan_grad_at(0));
        assert!(!plan.nan_grad_at(1));
        assert!(plan.nan_grad_at(2));
        assert!(!plan.nan_grad_at(2), "a fault fires once");
        assert!(plan.exhausted());
    }

    #[test]
    fn corrupt_flip_is_deterministic_per_seed() {
        let mangle = |seed| {
            let plan = FaultPlan::new(
                vec![FaultKind::CorruptCheckpoint {
                    write: 1,
                    mode: CorruptMode::Flip,
                }],
                seed,
            );
            let mut first = b"0123456789abcdef".to_vec();
            assert_eq!(plan.corrupt_checkpoint_write(&mut first), None);
            assert_eq!(first, b"0123456789abcdef".to_vec(), "write 0 untouched");
            let mut second = b"0123456789abcdef".to_vec();
            assert_eq!(
                plan.corrupt_checkpoint_write(&mut second),
                Some(CorruptMode::Flip)
            );
            assert_ne!(second, b"0123456789abcdef".to_vec(), "write 1 corrupted");
            second
        };
        assert_eq!(mangle(7), mangle(7), "same seed, same corruption");
    }

    #[test]
    fn truncate_halves_the_buffer() {
        let plan = FaultPlan::new(
            vec![FaultKind::CorruptCheckpoint {
                write: 0,
                mode: CorruptMode::Truncate,
            }],
            0,
        );
        let mut bytes = vec![9u8; 10];
        assert_eq!(
            plan.corrupt_checkpoint_write(&mut bytes),
            Some(CorruptMode::Truncate)
        );
        assert_eq!(bytes.len(), 5);
    }

    #[test]
    fn kill_worker_panics_only_at_target() {
        let plan = FaultPlan::parse("kill-worker@epoch=1,worker=0").unwrap();
        plan.maybe_kill_worker(0, 0); // wrong epoch: no panic
        plan.maybe_kill_worker(1, 1); // wrong worker: no panic
        let p = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.maybe_kill_worker(1, 0)
        }));
        assert!(p.is_err(), "matching (epoch, worker) must panic");
        plan.maybe_kill_worker(1, 0); // already fired: no second panic
    }

    #[test]
    fn conn_faults_track_accept_order() {
        let plan = FaultPlan::parse("drop-conn@nth=1; delay-conn@nth=2,ms=30").unwrap();
        assert_eq!(plan.conn_fault(), None); // conn 0
        assert_eq!(plan.conn_fault(), Some(ConnFault::Drop)); // conn 1
        assert_eq!(plan.conn_fault(), Some(ConnFault::DelayMs(30))); // conn 2
        assert_eq!(plan.conn_fault(), None); // conn 3
        assert!(plan.exhausted());
    }

    #[test]
    fn periodic_conn_faults_refire_and_never_exhaust() {
        let plan = FaultPlan::parse("drop-conn@every=3").unwrap();
        assert_eq!(plan.faults(), vec![FaultKind::DropConnEvery { every: 3 }]);
        let mut drops = 0;
        for conn in 0..12u64 {
            match plan.conn_fault() {
                Some(ConnFault::Drop) => {
                    drops += 1;
                    assert_eq!((conn + 1) % 3, 0, "fires on every 3rd connection");
                }
                Some(other) => unreachable!("unexpected fault {other:?}"),
                None => {}
            }
        }
        assert_eq!(drops, 4, "periodic faults re-fire each period");
        assert!(
            plan.exhausted(),
            "periodic faults never count toward exhaustion"
        );
    }

    #[test]
    fn periodic_delay_parses_and_one_shot_takes_precedence() {
        let plan = FaultPlan::parse("drop-conn@nth=0; delay-conn@every=1,ms=7").unwrap();
        // conn 0: the one-shot drop wins over the every-conn delay schedule
        assert_eq!(plan.conn_fault(), Some(ConnFault::Drop));
        assert_eq!(plan.conn_fault(), Some(ConnFault::DelayMs(7))); // conn 1
        assert_eq!(plan.conn_fault(), Some(ConnFault::DelayMs(7))); // conn 2

        // strict parse: every=0 and missing ms are rejected
        assert!(FaultPlan::parse("drop-conn@every=0").is_err());
        assert!(FaultPlan::parse("delay-conn@every=4").is_err());
    }
}
