//! Seeded-defect tests: one graph per defect class the analyzer must catch,
//! plus clean-graph tests proving it stays quiet on correct constructions.

use harp_tensor::{ParamStore, Tape};
use harp_verify::{analyze, Severity};

/// A correct little MLP-style graph: no errors, no hazard warnings.
#[test]
fn clean_graph_reports_nothing() {
    let mut store = ParamStore::new();
    let w = store.register("w", vec![2, 2], vec![0.1, -0.2, 0.3, 0.4]);
    let b = store.register("b", vec![2], vec![0.0, 0.1]);

    let mut tape = Tape::new();
    let x = tape.constant(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let wv = tape.param(&store, w);
    let bv = tape.param(&store, b);
    let h = tape.matmul(x, wv);
    let h = tape.add_bias(h, bv);
    let h = tape.relu(h);
    let loss = tape.mean_all(h);

    let report = analyze(&tape, loss, Some(&store));
    assert!(report.is_clean(), "unexpected errors:\n{report}");
    assert_eq!(
        report.count(Severity::Warn),
        0,
        "unexpected warns:\n{report}"
    );
    assert_eq!(
        report.count(Severity::Info),
        0,
        "unexpected notes:\n{report}"
    );
}

#[test]
fn detects_shape_inconsistency() {
    let mut tape = Tape::new();
    let a = tape.constant(vec![2, 3], vec![1.0; 6]);
    let b = tape.constant(vec![3, 2], vec![1.0; 6]);
    let c = tape.matmul(a, b); // [2, 2]
    let loss = tape.sum_all(c);
    // simulate a buggy constructor recording the wrong output shape
    tape.corrupt_shape_for_test(c, vec![2, 3]);

    let report = analyze(&tape, loss, None);
    assert!(report.has("shape-mismatch"), "missed corruption:\n{report}");
    assert!(!report.is_clean());
}

#[test]
fn detects_structurally_invalid_op() {
    let mut tape = Tape::new();
    let a = tape.constant(vec![2, 3], vec![1.0; 6]);
    let b = tape.constant(vec![2, 3], vec![1.0; 6]);
    let c = tape.add(a, b);
    let loss = tape.sum_all(c);
    // make `b` incompatible after the fact: add now sees [2,3] + [3,2]
    tape.corrupt_shape_for_test(b, vec![3, 2]);

    let report = analyze(&tape, loss, None);
    assert!(report.has("invalid-op"), "missed invalidity:\n{report}");
}

#[test]
fn detects_unreachable_param() {
    let mut store = ParamStore::new();
    let w = store.register("w", vec![2], vec![0.5, 0.5]);
    let orphan = store.register("orphan", vec![2], vec![1.0, 1.0]);

    let mut tape = Tape::new();
    let wv = tape.param(&store, w);
    let ov = tape.param(&store, orphan);
    let x = tape.constant(vec![2], vec![1.0, 2.0]);
    let wx = tape.mul(wv, x);
    let loss = tape.sum_all(wx);
    // `ov` participates in a computation... that never reaches the loss
    let _dead = tape.mul_scalar(ov, 2.0);

    let report = analyze(&tape, loss, Some(&store));
    assert!(report.has("unreachable-param"), "missed orphan:\n{report}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "unreachable-param")
        .unwrap();
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("orphan"), "unnamed param: {}", d.message);
}

#[test]
fn notes_param_registered_but_never_injected() {
    let mut store = ParamStore::new();
    let w = store.register("w", vec![1], vec![2.0]);
    let _unused = store.register("never_injected", vec![1], vec![0.0]);

    let mut tape = Tape::new();
    let wv = tape.param(&store, w);
    let loss = tape.sum_all(wv);

    let report = analyze(&tape, loss, Some(&store));
    assert!(report.is_clean(), "{report}");
    assert!(report.has("param-not-injected"), "{report}");
}

#[test]
fn detects_dead_subgraph() {
    let mut tape = Tape::new();
    let x = tape.constant(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
    let live = tape.mul_scalar(x, 2.0);
    let loss = tape.sum_all(live);
    // a three-node cone nothing consumes
    let d1 = tape.add_scalar(x, 1.0);
    let d2 = tape.relu(d1);
    let _d3 = tape.sum_all(d2);

    let report = analyze(&tape, loss, None);
    assert!(report.has("dead-subgraph"), "missed dead cone:\n{report}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "dead-subgraph")
        .unwrap();
    // the root reports its dead cone: sum_all + relu + add_scalar
    assert!(d.message.contains("2 upstream"), "message: {}", d.message);
    // dead code is waste, not unsoundness
    assert_eq!(d.severity, Severity::Warn);
    assert!(report.is_clean());
}

#[test]
fn detects_non_finite_constant() {
    let mut tape = Tape::new();
    let bad = tape.constant(vec![3], vec![1.0, f32::NAN, 3.0]);
    let s = tape.mul_scalar(bad, 2.0);
    let loss = tape.sum_all(s);

    let report = analyze(&tape, loss, None);
    assert!(report.has("non-finite-constant"), "missed NaN:\n{report}");
    assert!(!report.is_clean());

    let mut tape = Tape::new();
    let inf = tape.scalar(f32::INFINITY);
    let loss = tape.sum_all(inf);
    let report = analyze(&tape, loss, None);
    assert!(report.has("non-finite-constant"), "missed inf:\n{report}");
}

#[test]
fn detects_unguarded_ln_and_guard_silences_it() {
    let mut store = ParamStore::new();
    let w = store.register("w", vec![2], vec![0.5, 0.5]);

    // unguarded: ln of a raw parameter (range is the whole line)
    let mut tape = Tape::new();
    let wv = tape.param(&store, w);
    let l = tape.ln(wv);
    let loss = tape.sum_all(l);
    let report = analyze(&tape, loss, Some(&store));
    assert!(report.has("unguarded-ln"), "missed hazard:\n{report}");

    // guarded: sigmoid -> (0,1), plus epsilon -> provably positive
    let mut tape = Tape::new();
    let wv = tape.param(&store, w);
    let pos = tape.sigmoid(wv);
    let pos = tape.add_scalar(pos, 1e-6);
    let l = tape.ln(pos);
    let loss = tape.sum_all(l);
    let report = analyze(&tape, loss, Some(&store));
    assert!(!report.has("unguarded-ln"), "false positive:\n{report}");
}

#[test]
fn detects_unguarded_sqrt() {
    let mut tape = Tape::new();
    let x = tape.constant(vec![2], vec![0.0, 4.0]); // reaches 0: grad blows up
    let r = tape.sqrt(x);
    let loss = tape.sum_all(r);
    let report = analyze(&tape, loss, None);
    assert!(report.has("unguarded-sqrt"), "{report}");

    let mut tape = Tape::new();
    let x = tape.constant(vec![2], vec![0.0, 4.0]);
    let x = tape.add_scalar(x, 1e-8);
    let r = tape.sqrt(x);
    let loss = tape.sum_all(r);
    let report = analyze(&tape, loss, None);
    assert!(!report.has("unguarded-sqrt"), "false positive:\n{report}");
}

#[test]
fn detects_div_by_possible_zero() {
    let mut store = ParamStore::new();
    let w = store.register("w", vec![2], vec![1.0, 2.0]);

    let mut tape = Tape::new();
    let x = tape.constant(vec![2], vec![1.0, 1.0]);
    let wv = tape.param(&store, w); // could be 0 after an update
    let q = tape.div(x, wv);
    let loss = tape.sum_all(q);
    let report = analyze(&tape, loss, Some(&store));
    assert!(report.has("div-by-zero-risk"), "{report}");

    // the guarded idiom: recip(eps) keeps the divisor provably nonzero
    let mut tape = Tape::new();
    let x = tape.constant(vec![2], vec![1.0, 1.0]);
    let wv = tape.param(&store, w);
    let inv = tape.recip(wv, 1e-6);
    let q = tape.mul(x, inv);
    let loss = tape.sum_all(q);
    let report = analyze(&tape, loss, Some(&store));
    assert!(!report.has("div-by-zero-risk"), "false positive:\n{report}");
}

#[test]
fn detects_manual_softmax_without_max_subtraction() {
    let mut store = ParamStore::new();
    let logits = store.register("logits", vec![4], vec![0.1, 0.2, 0.3, 0.4]);

    // exp(unbounded) -> overflow risk
    let mut tape = Tape::new();
    let lv = tape.param(&store, logits);
    let e = tape.exp(lv);
    let z = tape.sum_all(e);
    let zb = tape.broadcast_scalar(z, 4);
    let p = tape.div(e, zb);
    let loss = tape.sum_all(p);
    let report = analyze(&tape, loss, Some(&store));
    assert!(report.has("exp-unbounded"), "{report}");

    // the fused op is max-subtracted internally: no warning
    let mut tape = Tape::new();
    let lv = tape.param(&store, logits);
    let lv2 = tape.reshape(lv, vec![1, 4]);
    let p = tape.softmax_last_dim(lv2, None);
    let loss = tape.sum_all(p);
    let report = analyze(&tape, loss, Some(&store));
    assert!(!report.has("exp-unbounded"), "false positive:\n{report}");
}

#[test]
fn detects_non_scalar_loss() {
    let mut tape = Tape::new();
    let x = tape.constant(vec![3], vec![1.0, 2.0, 3.0]);
    let y = tape.mul_scalar(x, 2.0);
    let report = analyze(&tape, y, None);
    assert!(report.has("non-scalar-loss"), "{report}");
}

#[test]
fn report_summary_is_ordered_and_counted() {
    let mut tape = Tape::new();
    let nan = tape.constant(vec![1], vec![f32::NAN]);
    let loss = tape.sum_all(nan);
    let _dead = tape.scalar(1.0);
    let report = analyze(&tape, loss, None);

    let s = report.summary();
    assert!(s.contains("error(s)"), "{s}");
    // errors print before warnings
    let e = s.find("non-finite-constant").unwrap();
    let w = s.find("dead-subgraph").unwrap();
    assert!(e < w, "{s}");
}
