//! Property tests tying the analyzer to ground truth from execution: on
//! randomly generated tapes, (1) independent shape re-inference must agree
//! with the shapes the executed tape recorded (no `shape-mismatch` /
//! `invalid-op` on well-formed graphs), and (2) reachability analysis must
//! agree with which parameters actually receive gradient from `backward`.

use harp_tensor::{ParamStore, Tape, Var};
use harp_verify::analyze;
use proptest::prelude::*;

/// Gradient-transparent unary ops: for inputs in (0, 2] each has a strictly
/// nonzero derivative, so a param chained through them into the loss is
/// guaranteed a nonzero gradient.
#[derive(Debug, Clone, Copy)]
enum ChainOp {
    Tanh,
    Sigmoid,
    MulScalar,
    AddScalar,
    LeakyRelu,
    Elu,
}

fn apply_chain(t: &mut Tape, op: ChainOp, x: Var) -> Var {
    match op {
        ChainOp::Tanh => t.tanh(x),
        ChainOp::Sigmoid => t.sigmoid(x),
        ChainOp::MulScalar => t.mul_scalar(x, 0.7),
        ChainOp::AddScalar => t.add_scalar(x, 0.3),
        ChainOp::LeakyRelu => t.leaky_relu(x, 0.1),
        ChainOp::Elu => t.elu(x, 1.0),
    }
}

fn arb_chain_op() -> impl Strategy<Value = ChainOp> {
    prop_oneof![
        Just(ChainOp::Tanh),
        Just(ChainOp::Sigmoid),
        Just(ChainOp::MulScalar),
        Just(ChainOp::AddScalar),
        Just(ChainOp::LeakyRelu),
        Just(ChainOp::Elu),
    ]
}

/// Structural ops for the shape property: each builds a fresh node from a
/// rank-2 running value, exercising a different inference rule.
#[derive(Debug, Clone, Copy)]
enum ShapeOp {
    MatMul,
    ConcatSelf,
    TransposeLast2,
    SoftmaxLastDim,
    LayerNorm,
    SumRows,
    MeanLastDim,
    SliceFirstCol,
    ReshapeFlat,
}

fn arb_shape_op() -> impl Strategy<Value = ShapeOp> {
    prop_oneof![
        Just(ShapeOp::MatMul),
        Just(ShapeOp::ConcatSelf),
        Just(ShapeOp::TransposeLast2),
        Just(ShapeOp::SoftmaxLastDim),
        Just(ShapeOp::LayerNorm),
        Just(ShapeOp::SumRows),
        Just(ShapeOp::MeanLastDim),
        Just(ShapeOp::SliceFirstCol),
        Just(ShapeOp::ReshapeFlat),
    ]
}

/// Apply `op` to a rank-2 `[r, c]` value, returning a rank-2 result
/// (re-promoting reductions so the chain can continue).
fn apply_shape_op(t: &mut Tape, op: ShapeOp, x: Var, r: usize, c: usize) -> (Var, usize, usize) {
    match op {
        ShapeOp::MatMul => {
            let w = t.constant(vec![c, 3], vec![0.1; c * 3]);
            (t.matmul(x, w), r, 3)
        }
        ShapeOp::ConcatSelf => (t.concat_cols(&[x, x]), r, 2 * c),
        ShapeOp::TransposeLast2 => (t.transpose_last2(x), c, r),
        ShapeOp::SoftmaxLastDim => (t.softmax_last_dim(x, None), r, c),
        ShapeOp::LayerNorm => (t.layer_norm(x, 1e-5), r, c),
        ShapeOp::SumRows => {
            let s = t.sum_rows(x); // [c]
            (t.reshape(s, vec![1, c]), 1, c)
        }
        ShapeOp::MeanLastDim => (t.mean_last_dim(x), r, 1),
        ShapeOp::SliceFirstCol => (t.slice_cols(x, 0, 1), r, 1),
        ShapeOp::ReshapeFlat => {
            let f = t.reshape(x, vec![r * c]);
            (t.reshape(f, vec![1, r * c]), 1, r * c)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Well-formed random graphs must re-infer exactly the shapes the tape
    /// executed: no shape or validity diagnostics, and no false hazard on
    /// graphs made of bounded ops.
    #[test]
    fn shape_reinference_matches_executed_shapes(
        r in 1usize..4,
        c in 1usize..4,
        ops in proptest::collection::vec(arb_shape_op(), 1..6),
    ) {
        let mut t = Tape::new();
        let data: Vec<f32> = (0..r * c).map(|i| 0.05 * i as f32 + 0.1).collect();
        let mut x = t.constant(vec![r, c], data);
        let (mut r, mut c) = (r, c);
        for &op in &ops {
            let (nx, nr, nc) = apply_shape_op(&mut t, op, x, r, c);
            x = nx;
            r = nr;
            c = nc;
        }
        let loss = t.mean_all(x);
        let report = analyze(&t, loss, None);
        prop_assert!(
            !report.has("shape-mismatch") && !report.has("invalid-op"),
            "ops {:?}:\n{}", ops, report
        );
        prop_assert!(report.is_clean(), "ops {:?}:\n{}", ops, report);
    }

    /// Reachability must agree with execution: params the analyzer calls
    /// unreachable get exactly zero gradient from `backward`, and params
    /// that do receive nonzero gradient are never flagged.
    #[test]
    fn reachability_agrees_with_nonzero_gradients(
        raw_mask in proptest::collection::vec(proptest::bool::ANY, 4),
        chains in proptest::collection::vec(
            proptest::collection::vec(arb_chain_op(), 0..4), 4),
        vals in proptest::collection::vec(0.2f32..1.5, 16),
    ) {
        // at least one param must feed the loss
        let mut mask = raw_mask;
        mask[0] = true;

        let mut store = ParamStore::new();
        let ids: Vec<_> = (0..4)
            .map(|i| store.register(&format!("p{i}"), vec![4], vals[4 * i..4 * (i + 1)].to_vec()))
            .collect();

        let mut t = Tape::new();
        let mut live: Option<Var> = None;
        for i in 0..4 {
            let mut x = t.param(&store, ids[i]);
            for &op in &chains[i] {
                x = apply_chain(&mut t, op, x);
            }
            if mask[i] {
                live = Some(match live {
                    Some(acc) => t.add(acc, x),
                    None => x,
                });
            }
            // unmasked chains stay recorded on the tape but feed nothing
        }
        let total = live.expect("mask[0] is forced true");
        let loss = t.mean_all(total);

        let report = analyze(&t, loss, Some(&store));
        let flagged: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "unreachable-param")
            .map(|d| d.message.clone())
            .collect();

        store.zero_grads();
        t.backward(loss, &mut store);

        for i in 0..4 {
            let grad_nonzero = store.grad(ids[i]).iter().any(|&g| g != 0.0);
            let is_flagged = flagged.iter().any(|m| m.contains(&format!("'p{i}'")));
            // analyzer says unreachable => execution got zero gradient
            prop_assert!(
                !(is_flagged && grad_nonzero),
                "p{i} flagged unreachable but has nonzero grad (mask {:?}, chains {:?})",
                mask, chains
            );
            // nonzero gradient is only possible through a live path, and the
            // chain ops all have nonzero derivatives on (0, 2], so the two
            // notions must coincide exactly here
            prop_assert_eq!(
                mask[i], !is_flagged,
                "p{} mask/flag disagree (chains {:?})", i, &chains
            );
            prop_assert_eq!(
                mask[i], grad_nonzero,
                "p{} mask/grad disagree (chains {:?})", i, &chains
            );
        }
    }
}
