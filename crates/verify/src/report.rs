//! Diagnostics produced by tape analysis.

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth knowing, never wrong.
    Info,
    /// Suspicious: probably a bug or numerical hazard.
    Warn,
    /// Definitely wrong: executing/backpropagating this graph is unsound.
    Error,
}

/// One finding, anchored to a node of the analyzed tape.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `shape-mismatch`.
    pub code: &'static str,
    /// Tape node index the finding is anchored to, if any.
    pub node: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

/// All findings for one analyzed graph.
#[derive(Debug, Clone, Default)]
pub struct GraphReport {
    /// Findings in node order.
    pub diagnostics: Vec<Diagnostic>,
}

impl GraphReport {
    /// Number of findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// True if no Error-severity findings are present.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// True if some diagnostic carries `code`.
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// One line per finding, errors first.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut by_sev: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        by_sev.sort_by_key(|d| std::cmp::Reverse(d.severity));
        for d in by_sev {
            let _ = writeln!(out, "{d}");
        }
        let _ = write!(
            out,
            "{} error(s), {} warning(s), {} note(s)",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        );
        out
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.node {
            Some(n) => write!(
                f,
                "{}[{}] node #{n}: {}",
                self.severity, self.code, self.message
            ),
            None => write!(f, "{}[{}]: {}", self.severity, self.code, self.message),
        }
    }
}

impl std::fmt::Display for GraphReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}
