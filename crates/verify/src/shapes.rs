//! Independent shape re-inference.
//!
//! Re-derives every node's output shape from its inputs' shapes using only
//! the documented op semantics — deliberately *not* reusing the tape's own
//! construction-time checks, so a bug in either implementation shows up as a
//! disagreement.

use harp_tensor::{NodeView, Op, Shape};

/// Infer the output shape of `node` from `inputs` (the already-verified
/// shapes of its input nodes, in `Op::inputs()` order).
///
/// `Ok(None)` means the op's shape is free-form (leaves; reshape targets are
/// validated against element count instead). `Err` describes a structural
/// invalidity (e.g. mismatched matmul inner dims).
pub fn infer_shape(node: &NodeView<'_>, inputs: &[&Shape]) -> Result<Option<Shape>, String> {
    use Op::*;
    let sh = |i: usize| -> &Shape { inputs[i] };
    let as_matrix = |s: &Shape| -> Result<(usize, usize), String> {
        match s.0.as_slice() {
            [] => Ok((1, 1)),
            [n] => Ok((1, *n)),
            [r, c] => Ok((*r, *c)),
            other => Err(format!("expected rank <= 2, got {other:?}")),
        }
    };
    match node.op {
        Leaf => Ok(None),

        Add(_, _) | Sub(_, _) | Mul(_, _) | Div(_, _) => {
            if sh(0) != sh(1) {
                return Err(format!(
                    "elementwise op on mismatched shapes {:?} vs {:?}",
                    sh(0),
                    sh(1)
                ));
            }
            Ok(Some(sh(0).clone()))
        }

        Neg(_)
        | Exp(_)
        | Ln(_)
        | Sqrt(_)
        | Relu(_)
        | LeakyRelu(_, _)
        | Elu(_, _)
        | Sigmoid(_)
        | Tanh(_)
        | MulScalar(_, _)
        | AddScalar(_, _)
        | Recip(_, _) => Ok(Some(sh(0).clone())),

        AddBias(_, _) | MulRow(_, _) => {
            let w = sh(0).last_dim();
            if sh(1).numel() != w {
                return Err(format!(
                    "row-broadcast length {} vs last dim {}",
                    sh(1).numel(),
                    w
                ));
            }
            Ok(Some(sh(0).clone()))
        }

        BroadcastScalar(_, n) => {
            if sh(0).numel() != 1 {
                return Err(format!("broadcast_scalar of {} elements", sh(0).numel()));
            }
            Ok(Some(Shape(vec![*n])))
        }

        MatMul(_, _) => {
            let (m, k) = as_matrix(sh(0))?;
            let (k2, n) = as_matrix(sh(1))?;
            if k != k2 {
                return Err(format!("matmul inner dims {k} vs {k2}"));
            }
            Ok(Some(Shape(vec![m, n])))
        }

        MatMulBiasRelu(_, _, _) | MatMulBiasLeakyRelu(_, _, _, _) => {
            let (m, k) = as_matrix(sh(0))?;
            let (k2, n) = as_matrix(sh(1))?;
            if k != k2 {
                return Err(format!("matmul_bias_act inner dims {k} vs {k2}"));
            }
            if sh(2).numel() != n {
                return Err(format!(
                    "matmul_bias_act bias length {} vs {n} out cols",
                    sh(2).numel()
                ));
            }
            Ok(Some(Shape(vec![m, n])))
        }

        BatchMatMul(_, _) => {
            let (a, b) = (sh(0), sh(1));
            if a.rank() != 3 || b.rank() != 3 {
                return Err(format!(
                    "batch_matmul needs rank-3 inputs, got {:?} x {:?}",
                    a, b
                ));
            }
            let (ba, m, k) = (a.dim(0), a.dim(1), a.dim(2));
            let (bb, k2, n) = (b.dim(0), b.dim(1), b.dim(2));
            if ba != bb {
                return Err(format!("batch_matmul batch dims {ba} vs {bb}"));
            }
            if k != k2 {
                return Err(format!("batch_matmul inner dims {k} vs {k2}"));
            }
            Ok(Some(Shape(vec![ba, m, n])))
        }

        TransposeLast2(_) => match sh(0).0.as_slice() {
            [m, n] => Ok(Some(Shape(vec![*n, *m]))),
            [b, m, n] => Ok(Some(Shape(vec![*b, *n, *m]))),
            other => Err(format!("transpose_last2 of rank-{} tensor", other.len())),
        },

        Reshape(_) => {
            // the target shape is free; only the element count is constrained
            if node.shape.numel() != sh(0).numel() {
                return Err(format!(
                    "reshape changes element count {} -> {}",
                    sh(0).numel(),
                    node.shape.numel()
                ));
            }
            Ok(None)
        }

        ConcatCols(_) => {
            let rows = sh(0).leading_rows();
            let mut total = 0usize;
            for (i, s) in inputs.iter().enumerate() {
                if s.leading_rows() != rows {
                    return Err(format!(
                        "concat_cols part {i} has {} rows, expected {rows}",
                        s.leading_rows()
                    ));
                }
                total += s.last_dim();
            }
            Ok(Some(Shape(vec![rows, total])))
        }

        ConcatRows(_) => {
            if sh(0).rank() <= 1 {
                let mut n = 0usize;
                for (i, s) in inputs.iter().enumerate() {
                    if s.rank() > 1 {
                        return Err(format!("concat_rows part {i} mixes ranks"));
                    }
                    n += s.numel();
                }
                Ok(Some(Shape(vec![n])))
            } else {
                let cols = sh(0).last_dim();
                let mut rows = 0usize;
                for (i, s) in inputs.iter().enumerate() {
                    if s.last_dim() != cols {
                        return Err(format!(
                            "concat_rows part {i} has {} cols, expected {cols}",
                            s.last_dim()
                        ));
                    }
                    rows += s.leading_rows();
                }
                Ok(Some(Shape(vec![rows, cols])))
            }
        }

        GatherRows(_, idx) => {
            let s = sh(0);
            let rows = match s.rank() {
                1 => s.dim(0),
                2 => s.dim(0),
                r => return Err(format!("gather_rows of rank-{r} tensor")),
            };
            if let Some(&bad) = idx.iter().find(|&&i| i >= rows) {
                return Err(format!("gather index {bad} out of {rows} rows"));
            }
            Ok(Some(if s.rank() == 1 {
                Shape(vec![idx.len()])
            } else {
                Shape(vec![idx.len(), s.dim(1)])
            }))
        }

        SliceCols(_, start, end) => {
            let (rows, cols) = as_matrix(sh(0))?;
            if !(start < end && *end <= cols) {
                return Err(format!("slice_cols [{start}, {end}) out of {cols} cols"));
            }
            Ok(Some(Shape(vec![rows, end - start])))
        }

        SumAll(_) | MeanAll(_) | MaxAll(_) => Ok(Some(Shape::scalar())),

        SumRows(_) => {
            let (_, cols) = as_matrix(sh(0))?;
            Ok(Some(Shape(vec![cols])))
        }

        MeanLastDim(_) => Ok(Some(Shape(vec![sh(0).leading_rows(), 1]))),

        SegmentSum(_, seg, n_segments) => {
            let s = sh(0);
            let n_in = match s.rank() {
                1 => s.dim(0),
                2 => s.dim(0),
                r => return Err(format!("segment_sum of rank-{r} tensor")),
            };
            check_segments(seg, n_in, *n_segments)?;
            Ok(Some(if s.rank() == 1 {
                Shape(vec![*n_segments])
            } else {
                Shape(vec![*n_segments, s.dim(1)])
            }))
        }

        SegmentMax(_, seg, n_segments) => {
            if sh(0).rank() != 1 {
                return Err("segment_max needs a rank-1 input".to_string());
            }
            check_segments(seg, sh(0).dim(0), *n_segments)?;
            Ok(Some(Shape(vec![*n_segments])))
        }

        SegmentSoftmax(_, seg, n_segments) => {
            if sh(0).rank() != 1 {
                return Err("segment_softmax needs a rank-1 input".to_string());
            }
            check_segments(seg, sh(0).dim(0), *n_segments)?;
            Ok(Some(sh(0).clone()))
        }

        SoftmaxLastDim(_, mask) => {
            if let Some(m) = mask {
                let w = sh(0).last_dim();
                if m.len() != w && m.len() != sh(0).numel() {
                    return Err(format!(
                        "softmax mask length {} must be {w} or {}",
                        m.len(),
                        sh(0).numel()
                    ));
                }
            }
            Ok(Some(sh(0).clone()))
        }

        LayerNorm(_, _) => Ok(Some(sh(0).clone())),
    }
}

fn check_segments(seg: &[usize], n_in: usize, n_segments: usize) -> Result<(), String> {
    if seg.len() != n_in {
        return Err(format!(
            "segment index length {} vs {} input rows",
            seg.len(),
            n_in
        ));
    }
    if let Some(&bad) = seg.iter().find(|&&s| s >= n_segments) {
        return Err(format!("segment id {bad} out of {n_segments} segments"));
    }
    Ok(())
}
