//! Determinism passes (harp-verify v2): proofs over recorded tapes that
//! the repo's bitwise-reproducibility claims hold *structurally*, not just
//! on sampled inputs.
//!
//! * [`audit_reduction_order`] — every float reduction on the tape must
//!   accumulate in a statically fixed order. The op set is classified
//!   exhaustively (adding an op variant without classifying it here is a
//!   compile error), and the order-sensitive reductions (`max_all`,
//!   `segment_max`) are re-derived from the recorded values: a saved
//!   argmax that disagrees with the canonical first-maximum scan means the
//!   forward accumulation did not run in the fixed serial order.
//! * [`analyze_grad_aliasing`] — given a planned parallel schedule
//!   (disjoint tape-index `sections` that would run their backward
//!   concurrently), prove that no two sections write the same
//!   [`GradBuffer`](harp_tensor::GradBuffer) region or the same node's
//!   gradient accumulator. The serial schedule (one section spanning the
//!   tape) is aliasing-free by construction; the pass exists to vet the
//!   fused/partitioned backward schedules the SIMD rewrite will introduce.
//! * [`check_epoch_cache`] — structural bisimulation between a model's
//!   full forward tape and its `precompute_epoch` + `forward_cached`
//!   tape: outside the splice point (the leaf carrying the cached epoch
//!   table) the two graphs must match op-for-op (kind, metadata, shapes,
//!   parameter provenance, constants bitwise), and at the splice point the
//!   cached table must equal the full forward's value bitwise. Together
//!   that proves cached == full for *every* traffic matrix, not just the
//!   ones the example tests sampled.

use std::collections::HashSet;
use std::ops::Range;

use harp_tensor::{Op, ParamStore, Tape, Var};

use crate::analyze::op_name;
use crate::report::{Diagnostic, GraphReport, Severity};

// ---------------------------------------------------------------------
// Pass 1: reduction-order audit
// ---------------------------------------------------------------------

/// How a recorded op accumulates floats, for the determinism audit.
enum Accumulation {
    /// No float accumulation across elements (elementwise, shape ops).
    None,
    /// Accumulates in input-index order — statically fixed by the serial
    /// kernel (per-element order is also preserved by the row-partitioned
    /// parallel kernels).
    FixedOrder,
    /// Selects an element (max/argmax): the *value* is order-independent
    /// but the saved argmax — and therefore the backward pass — depends on
    /// the scan order. Checked against the canonical first-maximum scan.
    OrderSensitiveSelect,
}

/// Classify every op variant. Deliberately exhaustive (no `_` arm): a new
/// op cannot be added to the tape without deciding its accumulation-order
/// story here.
fn accumulation_of(op: &Op) -> Accumulation {
    use Op::*;
    match op {
        Leaf | Add(..) | Sub(..) | Mul(..) | Div(..) | Neg(..) | Exp(..) | Ln(..) | Sqrt(..)
        | Relu(..) | LeakyRelu(..) | Elu(..) | Sigmoid(..) | Tanh(..) | MulScalar(..)
        | AddScalar(..) | Recip(..) | AddBias(..) | MulRow(..) | BroadcastScalar(..)
        | TransposeLast2(..) | Reshape(..) | ConcatCols(..) | ConcatRows(..) | GatherRows(..)
        | SliceCols(..) => Accumulation::None,
        // Index-order accumulations: sums, means, matmul dot products
        // (k-order), softmax/layer-norm statistics. All serial kernels scan
        // in index order, and the parallel kernels partition by output row
        // without changing per-element order. The fused matmul+bias+act ops
        // share the matmul microkernel's per-element k-order and apply the
        // bias/activation epilogue once per element after the reduction, so
        // they inherit the same fixed order.
        MatMul(..)
        | MatMulBiasRelu(..)
        | MatMulBiasLeakyRelu(..)
        | BatchMatMul(..)
        | SumAll(..)
        | MeanAll(..)
        | SumRows(..)
        | MeanLastDim(..)
        | SegmentSum(..)
        | SegmentSoftmax(..)
        | SoftmaxLastDim(..)
        | LayerNorm(..) => Accumulation::FixedOrder,
        MaxAll(..) | SegmentMax(..) => Accumulation::OrderSensitiveSelect,
    }
}

/// Audit every float reduction on `tape` for statically fixed accumulation
/// order. Emits:
///
/// * `reduction-order` (Error) — a `max_all`/`segment_max` node whose
///   recorded argmax disagrees with the canonical first-maximum scan of
///   its input: the forward accumulation ran in a different order, so the
///   backward pass will route gradient to a different element than the
///   reference serial execution.
/// * `tie-sensitive-reduction` (Info) — one summary note when
///   order-sensitive selections have bitwise ties for the maximum: the
///   current scan picks the first, but any future change of scan order
///   would silently redirect gradients.
pub fn audit_reduction_order(tape: &Tape) -> GraphReport {
    let mut report = GraphReport::default();
    let mut tie_nodes = 0usize;
    for node in tape.nodes() {
        match accumulation_of(node.op) {
            Accumulation::None | Accumulation::FixedOrder => {}
            Accumulation::OrderSensitiveSelect => match node.op {
                Op::MaxAll(a) => {
                    let vals = tape.value(*a);
                    let canonical = first_argmax(vals);
                    let recorded = tape.argmax_of(node.var);
                    if Some(recorded) != canonical {
                        report.diagnostics.push(Diagnostic {
                            severity: Severity::Error,
                            code: "reduction-order",
                            node: Some(node.var.index()),
                            message: format!(
                                "max_all recorded argmax {recorded} but the canonical \
                                 first-maximum scan gives {:?}; the forward accumulation \
                                 did not run in the fixed serial order",
                                canonical
                            ),
                        });
                    }
                    if has_max_tie(vals) {
                        tie_nodes += 1;
                    }
                }
                Op::SegmentMax(a, seg, n_segments) => {
                    let vals = tape.value(*a);
                    let recorded = tape.segment_argmax_of(node.var);
                    let canonical = segment_first_argmax(vals, seg, *n_segments);
                    for (s, (&rec, canon)) in recorded.iter().zip(&canonical).enumerate() {
                        if Some(rec) != *canon {
                            report.diagnostics.push(Diagnostic {
                                severity: Severity::Error,
                                code: "reduction-order",
                                node: Some(node.var.index()),
                                message: format!(
                                    "segment_max recorded argmax {rec} for segment {s} but \
                                     the canonical first-maximum scan gives {canon:?}; the \
                                     forward accumulation did not run in the fixed serial \
                                     order"
                                ),
                            });
                        }
                    }
                    if segment_has_tie(vals, seg, *n_segments) {
                        tie_nodes += 1;
                    }
                }
                // `accumulation_of` only returns OrderSensitiveSelect for
                // the two variants above.
                _ => unreachable!("unclassified order-sensitive reduction"),
            },
        }
    }
    if tie_nodes > 0 {
        report.diagnostics.push(Diagnostic {
            severity: Severity::Info,
            code: "tie-sensitive-reduction",
            node: None,
            message: format!(
                "{tie_nodes} order-sensitive max reduction(s) have bitwise ties for the \
                 maximum; the fixed scan picks the first, but any change of scan order \
                 would redirect subgradients"
            ),
        });
    }
    report.diagnostics.sort_by_key(|d| (d.node, d.code));
    report
}

/// Index of the first maximum under the canonical serial scan (strictly
/// greater replaces), i.e. exactly what `Tape::max_all` records.
fn first_argmax(vals: &[f32]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, &x) in vals.iter().enumerate() {
        match best {
            None => best = Some(i),
            Some(b) if x > vals[b] => best = Some(i),
            Some(_) => {}
        }
    }
    best
}

fn has_max_tie(vals: &[f32]) -> bool {
    match first_argmax(vals) {
        None => false,
        Some(b) => vals
            .iter()
            .enumerate()
            .any(|(i, &x)| i != b && x.to_bits() == vals[b].to_bits()),
    }
}

/// Per-segment first argmax under the canonical serial scan, mirroring
/// `Tape::segment_max` (`None` for an empty segment, which the forward
/// pass rejects anyway).
fn segment_first_argmax(vals: &[f32], seg: &[usize], n_segments: usize) -> Vec<Option<usize>> {
    let mut best: Vec<Option<usize>> = vec![None; n_segments];
    for (i, &s) in seg.iter().enumerate() {
        if s >= n_segments {
            continue; // forward would have rejected; shape pass reports it
        }
        match best[s] {
            None => best[s] = Some(i),
            Some(b) if vals[i] > vals[b] => best[s] = Some(i),
            Some(_) => {}
        }
    }
    best
}

fn segment_has_tie(vals: &[f32], seg: &[usize], n_segments: usize) -> bool {
    let best = segment_first_argmax(vals, seg, n_segments);
    seg.iter().enumerate().any(|(i, &s)| {
        s < n_segments && best[s].is_some_and(|b| i != b && vals[i].to_bits() == vals[b].to_bits())
    })
}

// ---------------------------------------------------------------------
// Pass 2: gradient-buffer alias analysis
// ---------------------------------------------------------------------

/// Prove that a planned parallel backward schedule is free of gradient
/// aliasing.
///
/// `sections` are disjoint tape-index ranges whose backward passes would
/// execute concurrently (the serial schedule is the single section
/// `0..tape.len()`). During backward, two kinds of shared writes can race:
///
/// * **Parameter regions**: a parameter injected as leaves in two
///   different sections makes both sections accumulate into the same
///   [`GradBuffer`](harp_tensor::GradBuffer) region — `grad-alias`
///   (Error), naming the parameter and both leaf nodes.
/// * **Node accumulators**: a consumer in one section back-propagating
///   into a producer recorded in another section writes that node's
///   gradient accumulator across the section boundary — `grad-alias`
///   (Error), naming both nodes and sections.
///
/// Independent of the schedule, every parameter injected more than once on
/// the tape (shared-parameter recursion, e.g. HARP's RAU reusing its MLP
/// weights each iteration) is reported as `shared-param-fanin` (Info):
/// those are exactly the regions a partitioned backward must give private
/// per-partition buffers and merge in fixed order.
///
/// Only gradient-carrying nodes (those reaching `loss` backward) are
/// considered; dead subgraphs never write gradients.
pub fn analyze_grad_aliasing(
    tape: &Tape,
    loss: Var,
    store: Option<&ParamStore>,
    sections: &[Range<usize>],
) -> GraphReport {
    let mut report = GraphReport::default();
    let n = tape.len();
    if loss.index() >= n {
        report.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            code: "loss-not-on-tape",
            node: None,
            message: format!(
                "loss handle #{} is not on this tape ({n} nodes)",
                loss.index()
            ),
        });
        return report;
    }

    // Section map; also validate disjointness.
    let mut section_of: Vec<Option<usize>> = vec![None; n];
    for (si, r) in sections.iter().enumerate() {
        for i in r.start..r.end.min(n) {
            if let Some(prev) = section_of[i] {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    code: "invalid-sections",
                    node: Some(i),
                    message: format!(
                        "node #{i} belongs to overlapping sections {prev} and {si}; \
                         a parallel schedule must partition the tape"
                    ),
                });
                return report;
            }
            section_of[i] = Some(si);
        }
    }

    // Backward reachability from the loss (mirrors the v1 analyzer).
    let mut reaches_loss = vec![false; n];
    reaches_loss[loss.index()] = true;
    for node in tape.nodes().collect::<Vec<_>>().into_iter().rev() {
        if reaches_loss[node.var.index()] {
            for input in node.op.inputs() {
                reaches_loss[input.index()] = true;
            }
        }
    }

    let param_name = |id: harp_tensor::ParamId| match store {
        Some(s) => format!("'{}'", s.name(id)),
        None => format!("#{:?}", id),
    };

    // Parameter leaves: group by ParamId.
    let mut leaves_of: Vec<(harp_tensor::ParamId, Vec<usize>)> = Vec::new();
    for node in tape.nodes() {
        let i = node.var.index();
        if !reaches_loss[i] {
            continue;
        }
        if let Some(id) = node.param {
            match leaves_of.iter_mut().find(|(p, _)| *p == id) {
                Some((_, v)) => v.push(i),
                None => leaves_of.push((id, vec![i])),
            }
        }
    }
    for (id, leaves) in &leaves_of {
        if leaves.len() > 1 {
            report.diagnostics.push(Diagnostic {
                severity: Severity::Info,
                code: "shared-param-fanin",
                node: Some(leaves[0]),
                message: format!(
                    "parameter {} is injected {} times (leaves {:?}); a partitioned \
                     backward needs a private buffer per partition, merged in fixed order",
                    param_name(*id),
                    leaves.len(),
                    leaves
                ),
            });
        }
        // Any two leaves of the same param in different sections alias the
        // same GradBuffer region.
        for (k, &a) in leaves.iter().enumerate() {
            for &b in &leaves[k + 1..] {
                if let (Some(sa), Some(sb)) = (section_of[a], section_of[b]) {
                    if sa != sb {
                        report.diagnostics.push(Diagnostic {
                            severity: Severity::Error,
                            code: "grad-alias",
                            node: Some(a),
                            message: format!(
                                "parameter {} gradient region is written by leaf #{a} \
                                 (section {sa}) and leaf #{b} (section {sb}), which run \
                                 concurrently",
                                param_name(*id)
                            ),
                        });
                    }
                }
            }
        }
    }

    // Cross-section gradient-accumulator writes: consumer c propagates
    // into input i across a section boundary.
    for node in tape.nodes() {
        let c = node.var.index();
        if !reaches_loss[c] {
            continue;
        }
        let Some(sc) = section_of[c] else { continue };
        for input in node.op.inputs() {
            let i = input.index();
            if !reaches_loss[i] {
                continue;
            }
            if let Some(si) = section_of[i] {
                if si != sc {
                    report.diagnostics.push(Diagnostic {
                        severity: Severity::Error,
                        code: "grad-alias",
                        node: Some(i),
                        message: format!(
                            "{} #{c} (section {sc}) writes the gradient accumulator of \
                             {} #{i} (section {si}) across the section boundary",
                            op_name(node.op),
                            op_name(tape.node(input).op)
                        ),
                    });
                }
            }
        }
    }

    report.diagnostics.sort_by_key(|d| (d.node, d.code));
    report
}

// ---------------------------------------------------------------------
// Pass 3: epoch-cache consistency lint
// ---------------------------------------------------------------------

/// Structurally prove that `precompute_epoch` + `forward_cached` covers
/// the same subgraph as the full forward.
///
/// Walks the two tapes backward from their output nodes in lockstep. The
/// cached tape may replace an arbitrary full-tape subgraph with a single
/// constant leaf holding the cached epoch table (`cache`), or — at a
/// full-tape `GatherRows` whose source is that subgraph — with a constant
/// leaf holding just the gathered rows (`Tape::constant_rows`); at each
/// splice point the full tape's corresponding value must equal the
/// spliced constant bitwise (`cache-divergence` otherwise). Everywhere
/// else the nodes must match exactly — op kind and metadata, shapes,
/// parameter provenance, and constant leaves bitwise
/// (`cache-structure-mismatch` otherwise).
///
/// Emits `cache-spliced` (Info) naming the splice node when the proof
/// found the cache in use, or `cache-unused` (Info) when the cached tape
/// never references the cache (a model using the default full-forward
/// `forward_cached`). Diagnostics anchor `node` to the *full* tape.
pub fn check_epoch_cache(
    full: &Tape,
    full_out: Var,
    cached: &Tape,
    cached_out: Var,
    cache: &[f32],
) -> GraphReport {
    let mut report = GraphReport::default();
    let mut visited: HashSet<(usize, usize)> = HashSet::new();
    let mut stack: Vec<(Var, Var)> = vec![(full_out, cached_out)];
    let mut splices: Vec<(usize, usize)> = Vec::new();

    while let Some((a, b)) = stack.pop() {
        if !visited.insert((a.index(), b.index())) {
            continue;
        }
        let na = full.node(a);
        let nb = cached.node(b);

        // Splice point: a non-param constant leaf on the cached tape whose
        // value is (bitwise) the cached epoch table.
        if matches!(nb.op, Op::Leaf) && nb.param.is_none() && bits_eq(nb.value, cache) {
            splices.push((a.index(), b.index()));
            if !bits_eq(na.value, cache) {
                let why = first_diff(na.value, cache);
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    code: "cache-divergence",
                    node: Some(a.index()),
                    message: format!(
                        "cached epoch table diverges from the full forward's {} #{}: {why}",
                        op_name(na.op),
                        a.index()
                    ),
                });
            }
            continue; // the subgraph behind the splice is what the cache covers
        }

        // Row-wise splice point: the cached tape may instead gather rows of
        // the epoch table host-side and inject only those rows as a
        // constant leaf (`Tape::constant_rows`), never materializing the
        // full table. The corresponding full-tape node is then a
        // GatherRows whose *source* is the cached subgraph. The proof
        // obligations are the same, restricted to the gathered rows: the
        // gather's source must equal the cache and the leaf must equal the
        // gather's output, both bitwise.
        if matches!(nb.op, Op::Leaf) && nb.param.is_none() {
            if let Op::GatherRows(src, idx) = na.op {
                let rows = idx.len();
                let is_row_gather = rows > 0 && nb.value.len().is_multiple_of(rows) && {
                    let w = nb.value.len() / rows;
                    idx.iter().enumerate().all(|(i, &r)| {
                        cache
                            .get(r * w..r * w + w)
                            .is_some_and(|c| bits_eq(c, &nb.value[i * w..i * w + w]))
                    })
                };
                if is_row_gather {
                    splices.push((a.index(), b.index()));
                    let src_val = full.node(*src).value;
                    if !bits_eq(src_val, cache) {
                        let why = first_diff(src_val, cache);
                        report.diagnostics.push(Diagnostic {
                            severity: Severity::Error,
                            code: "cache-divergence",
                            node: Some(a.index()),
                            message: format!(
                                "cached epoch table diverges from the source of the full \
                                 forward's gather_rows #{}: {why}",
                                a.index()
                            ),
                        });
                    }
                    continue; // rows + the table subgraph are what the cache covers
                }
            }
        }

        if let Err(why) = nodes_match(&na, &nb) {
            report.diagnostics.push(Diagnostic {
                severity: Severity::Error,
                code: "cache-structure-mismatch",
                node: Some(a.index()),
                message: format!(
                    "full forward {} #{} vs cached forward {} #{}: {why}",
                    op_name(na.op),
                    a.index(),
                    op_name(nb.op),
                    b.index()
                ),
            });
            continue; // don't cascade into a divergent subgraph
        }

        let ia = na.op.inputs();
        let ib = nb.op.inputs();
        // nodes_match checked arity
        stack.extend(ia.into_iter().zip(ib));
    }

    if let Some(&(a, b)) = splices.first() {
        report.diagnostics.push(Diagnostic {
            severity: Severity::Info,
            code: "cache-spliced",
            node: Some(a),
            message: format!(
                "cached forward splices the epoch table at leaf #{b}, covering the \
                 full-forward subgraph rooted at node #{a} ({} element(s))",
                cache.len()
            ),
        });
    } else {
        report.diagnostics.push(Diagnostic {
            severity: Severity::Info,
            code: "cache-unused",
            node: None,
            message: "cached forward never references the epoch table; the model runs \
                      the full forward (default `forward_cached`)"
                .to_string(),
        });
    }

    report.diagnostics.sort_by_key(|d| (d.node, d.code));
    report
}

/// Structural equality of two nodes: op kind + metadata, shape, parameter
/// provenance, and (for non-param leaves) bitwise values.
fn nodes_match(a: &harp_tensor::NodeView<'_>, b: &harp_tensor::NodeView<'_>) -> Result<(), String> {
    ops_match(a.op, b.op)?;
    if a.shape != b.shape {
        return Err(format!("shape {:?} vs {:?}", a.shape, b.shape));
    }
    if a.param != b.param {
        return Err("different parameter provenance".to_string());
    }
    if matches!(a.op, Op::Leaf) && a.param.is_none() && !bits_eq(a.value, b.value) {
        return Err(format!(
            "constant leaves differ: {}",
            first_diff(a.value, b.value)
        ));
    }
    Ok(())
}

/// Structural equality of two ops: same variant, bitwise-equal scalar
/// payloads, equal index arrays / bounds / masks, equal arity.
fn ops_match(a: &Op, b: &Op) -> Result<(), String> {
    use Op::*;
    if a.kind() != b.kind() {
        return Err(format!("op {} vs {}", a.kind(), b.kind()));
    }
    let scalar = |x: &f32, y: &f32, what: &str| -> Result<(), String> {
        if x.to_bits() != y.to_bits() {
            Err(format!("{what} constant {x} vs {y}"))
        } else {
            Ok(())
        }
    };
    match (a, b) {
        (LeakyRelu(_, x), LeakyRelu(_, y)) => scalar(x, y, "leaky_relu slope")?,
        (MatMulBiasLeakyRelu(_, _, _, x), MatMulBiasLeakyRelu(_, _, _, y)) => {
            scalar(x, y, "matmul_bias_leaky_relu slope")?;
        }
        (Elu(_, x), Elu(_, y)) => scalar(x, y, "elu alpha")?,
        (MulScalar(_, x), MulScalar(_, y)) => scalar(x, y, "mul_scalar")?,
        (AddScalar(_, x), AddScalar(_, y)) => scalar(x, y, "add_scalar")?,
        (Recip(_, x), Recip(_, y)) => scalar(x, y, "recip eps")?,
        (LayerNorm(_, x), LayerNorm(_, y)) => scalar(x, y, "layer_norm eps")?,
        (BroadcastScalar(_, x), BroadcastScalar(_, y)) if x != y => {
            return Err(format!("broadcast width {x} vs {y}"));
        }
        (SliceCols(_, s1, e1), SliceCols(_, s2, e2)) if (s1, e1) != (s2, e2) => {
            return Err(format!("slice bounds {s1}..{e1} vs {s2}..{e2}"));
        }
        (GatherRows(_, i1), GatherRows(_, i2)) if i1 != i2 => {
            return Err("gather index arrays differ".to_string());
        }
        (SegmentSum(_, s1, n1), SegmentSum(_, s2, n2))
        | (SegmentMax(_, s1, n1), SegmentMax(_, s2, n2))
        | (SegmentSoftmax(_, s1, n1), SegmentSoftmax(_, s2, n2))
            if s1 != s2 || n1 != n2 =>
        {
            return Err("segment layouts differ".to_string());
        }
        (SoftmaxLastDim(_, m1), SoftmaxLastDim(_, m2)) => {
            let eq = match (m1, m2) {
                (None, None) => true,
                (Some(x), Some(y)) => bits_eq(x, y),
                _ => false,
            };
            if !eq {
                return Err("softmax masks differ".to_string());
            }
        }
        _ => {}
    }
    let (na, nb) = (a.inputs().len(), b.inputs().len());
    if na != nb {
        return Err(format!("arity {na} vs {nb}"));
    }
    Ok(())
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn first_diff(a: &[f32], b: &[f32]) -> String {
    if a.len() != b.len() {
        return format!("length {} vs {}", a.len(), b.len());
    }
    match a
        .iter()
        .zip(b)
        .position(|(x, y)| x.to_bits() != y.to_bits())
    {
        Some(i) => format!(
            "first differing element at flat index {i} ({} vs {})",
            a[i], b[i]
        ),
        None => "identical".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reduction_audit_is_clean_on_canonical_tapes() {
        let mut t = Tape::new();
        let x = t.constant(vec![4], vec![1.0, 3.0, 2.0, 0.5]);
        let m = t.max_all(x);
        let seg = Arc::new(vec![0usize, 0, 1, 1]);
        let _s = t.segment_max(x, seg, 2);
        let _sum = t.sum_all(x);
        let _ = m;
        let report = audit_reduction_order(&t);
        assert!(report.diagnostics.is_empty(), "{report}");
    }

    #[test]
    fn corrupted_argmax_is_a_reduction_order_error() {
        let mut t = Tape::new();
        let x = t.constant(vec![4], vec![1.0, 3.0, 2.0, 0.5]);
        let m = t.max_all(x);
        t.corrupt_aux_for_test(m, vec![2]); // pretend a different scan order
        let report = audit_reduction_order(&t);
        assert!(report.has("reduction-order"), "{report}");
        assert_eq!(report.count(Severity::Error), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.node, Some(m.index()), "anchored to the offending op");
        assert!(d.message.contains("max_all"), "{}", d.message);
    }

    #[test]
    fn corrupted_segment_argmax_is_flagged_per_segment() {
        let mut t = Tape::new();
        let x = t.constant(vec![4], vec![1.0, 3.0, 2.0, 0.5]);
        let s = t.segment_max(x, Arc::new(vec![0, 0, 1, 1]), 2);
        t.corrupt_aux_for_test(s, vec![0, 2]); // segment 0's argmax is wrong
        let report = audit_reduction_order(&t);
        assert_eq!(report.count(Severity::Error), 1, "{report}");
        assert!(report.diagnostics[0].message.contains("segment 0"));
    }

    #[test]
    fn bitwise_ties_get_an_info_note() {
        let mut t = Tape::new();
        let x = t.constant(vec![3], vec![2.0, 2.0, 1.0]);
        let _m = t.max_all(x);
        let report = audit_reduction_order(&t);
        assert!(report.has("tie-sensitive-reduction"), "{report}");
        assert!(report.is_clean(), "ties are a note, not an error: {report}");
    }

    fn two_leaf_tape() -> (Tape, Var, ParamStore) {
        let mut store = ParamStore::new();
        let w = store.register("w", vec![2], vec![0.5, -0.5]);
        let mut t = Tape::new();
        let w1 = t.param(&store, w);
        let x = t.constant(vec![2], vec![1.0, 2.0]);
        let y = t.mul(w1, x);
        let w2 = t.param(&store, w); // shared-parameter reuse
        let z = t.mul(w2, y);
        let loss = t.sum_all(z);
        (t, loss, store)
    }

    #[test]
    fn serial_schedule_has_no_aliasing() {
        let (t, loss, store) = two_leaf_tape();
        let all = 0..t.len();
        let report = analyze_grad_aliasing(&t, loss, Some(&store), std::slice::from_ref(&all));
        assert!(report.is_clean(), "{report}");
        assert!(report.has("shared-param-fanin"), "{report}");
    }

    #[test]
    fn split_param_leaves_alias_the_grad_buffer() {
        let (t, loss, store) = two_leaf_tape();
        // Leaves are at nodes 0 and 3; split between them.
        let report = analyze_grad_aliasing(&t, loss, Some(&store), &[0..3, 3..t.len()]);
        assert!(!report.is_clean(), "{report}");
        assert!(report.has("grad-alias"), "{report}");
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "grad-alias")
            .expect("grad-alias");
        assert!(
            d.message.contains("'w'"),
            "names the parameter: {}",
            d.message
        );
    }

    #[test]
    fn cross_section_gradient_edges_are_flagged() {
        let mut t = Tape::new();
        let x = t.constant(vec![2], vec![1.0, 2.0]);
        let y = t.mul_scalar(x, 2.0);
        let loss = t.sum_all(y);
        // y (node 1) in section 0, loss (node 2) in section 1: backward for
        // the loss writes y's accumulator across the boundary.
        let report = analyze_grad_aliasing(&t, loss, None, &[0..2, 2..3]);
        assert!(report.has("grad-alias"), "{report}");
    }

    #[test]
    fn overlapping_sections_are_rejected() {
        let (t, loss, store) = two_leaf_tape();
        let report = analyze_grad_aliasing(&t, loss, Some(&store), &[0..4, 3..t.len()]);
        assert!(report.has("invalid-sections"), "{report}");
    }

    /// Tiny stand-in for a split model: "epoch" part `e = w * base`,
    /// "head" part `out = sum(e + tm)`.
    fn full_forward(store: &ParamStore, w: harp_tensor::ParamId, tm: &[f32]) -> (Tape, Var, Var) {
        let mut t = Tape::new();
        let wv = t.param(store, w);
        let base = t.constant(vec![2], vec![10.0, 20.0]);
        let e = t.mul(wv, base); // the TM-independent "epoch" subgraph
        let tmv = t.constant(vec![2], tm.to_vec());
        let sum = t.add(e, tmv);
        let out = t.sum_all(sum);
        (t, out, e)
    }

    fn cached_forward(cache: &[f32], tm: &[f32], head_scale: Option<f32>) -> (Tape, Var) {
        let mut t = Tape::new();
        let e = t.constant(vec![2], cache.to_vec()); // splice
        let e = match head_scale {
            Some(c) => t.mul_scalar(e, c), // a head the full forward doesn't have
            None => e,
        };
        let tmv = t.constant(vec![2], tm.to_vec());
        let sum = t.add(e, tmv);
        let out = t.sum_all(sum);
        (t, out)
    }

    #[test]
    fn matching_cached_forward_proves_clean() {
        let mut store = ParamStore::new();
        let w = store.register("w", vec![2], vec![0.5, 2.0]);
        let tm = [1.0f32, 2.0];
        let (full, full_out, e) = full_forward(&store, w, &tm);
        let cache: Vec<f32> = full.value(e).to_vec();
        let (cached, cached_out) = cached_forward(&cache, &tm, None);
        let report = check_epoch_cache(&full, full_out, &cached, cached_out, &cache);
        assert!(report.is_clean(), "{report}");
        assert!(report.has("cache-spliced"), "{report}");
    }

    #[test]
    fn structural_mismatch_names_the_offending_op() {
        let mut store = ParamStore::new();
        let w = store.register("w", vec![2], vec![0.5, 2.0]);
        let tm = [1.0f32, 2.0];
        let (full, full_out, e) = full_forward(&store, w, &tm);
        let cache: Vec<f32> = full.value(e).to_vec();
        // The cached head sneaks in an extra mul_scalar the full forward
        // does not have: covered subgraphs differ.
        let (cached, cached_out) = cached_forward(&cache, &tm, Some(1.5));
        let report = check_epoch_cache(&full, full_out, &cached, cached_out, &cache);
        assert!(report.has("cache-structure-mismatch"), "{report}");
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "cache-structure-mismatch")
            .expect("mismatch");
        assert!(
            d.message.contains("mul_scalar") || d.message.contains("mul"),
            "names the op: {}",
            d.message
        );
    }

    #[test]
    fn stale_cache_data_is_divergence() {
        let mut store = ParamStore::new();
        let w = store.register("w", vec![2], vec![0.5, 2.0]);
        let tm = [1.0f32, 2.0];
        let (full, full_out, e) = full_forward(&store, w, &tm);
        let mut cache: Vec<f32> = full.value(e).to_vec();
        cache[1] += 0.25; // stale table (e.g. computed from old params)
        let (cached, cached_out) = cached_forward(&cache, &tm, None);
        let report = check_epoch_cache(&full, full_out, &cached, cached_out, &cache);
        assert!(report.has("cache-divergence"), "{report}");
    }

    #[test]
    fn default_full_forward_reports_cache_unused() {
        let mut store = ParamStore::new();
        let w = store.register("w", vec![2], vec![0.5, 2.0]);
        let tm = [1.0f32, 2.0];
        let (full, full_out, e) = full_forward(&store, w, &tm);
        let cache: Vec<f32> = vec![123.0, 456.0]; // never spliced
        let (full2, full2_out, _) = full_forward(&store, w, &tm);
        let report = check_epoch_cache(&full, full_out, &full2, full2_out, &cache);
        let _ = e;
        assert!(report.is_clean(), "{report}");
        assert!(report.has("cache-unused"), "{report}");
    }
}
