//! A tiny interval abstract domain over `f64`.
//!
//! Used to over-approximate the range every tape node can take at run time:
//! parameters are unbounded (training can move them anywhere), constants
//! carry their actual min/max, and each op has a sound transfer function.
//! A hazard lint fires only when the *over*-approximation proves trouble is
//! reachable (e.g. `ln` of an interval whose lower bound is ≤ 0), so guarded
//! idioms like `x.add_scalar(eps).ln()` stay quiet.

/// A closed interval `[lo, hi]` (bounds may be infinite). Always non-empty.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound (may be `-inf`).
    pub lo: f64,
    /// Upper bound (may be `+inf`).
    pub hi: f64,
}

impl Interval {
    /// The whole real line.
    pub fn unbounded() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// A single point.
    pub fn point(x: f64) -> Self {
        Interval { lo: x, hi: x }
    }

    /// An explicit range; `lo <= hi` is the caller's responsibility.
    pub fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// Tight bounds of a value buffer. Non-finite entries (already reported
    /// separately) widen to unbounded so downstream math stays sound.
    pub fn of_values(vals: &[f32]) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in vals {
            if !x.is_finite() {
                return Interval::unbounded();
            }
            let x = x as f64;
            if x < lo {
                lo = x;
            }
            if x > hi {
                hi = x;
            }
        }
        if lo > hi {
            // empty buffer: treat as the point 0 (nothing to constrain)
            Interval::point(0.0)
        } else {
            Interval { lo, hi }
        }
    }

    /// True if `0 ∈ [lo, hi]`.
    pub fn contains_zero(&self) -> bool {
        self.lo <= 0.0 && self.hi >= 0.0
    }

    /// Smallest interval containing both.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Scale by a known constant.
    pub fn scale(self, c: f64) -> Interval {
        self * Interval::point(c)
    }

    /// Shift by a known constant.
    pub fn shift(self, c: f64) -> Interval {
        Interval {
            lo: self.lo + c,
            hi: self.hi + c,
        }
    }

    /// Monotone `exp`.
    pub fn exp(self) -> Interval {
        Interval {
            lo: self.lo.exp(),
            hi: self.hi.exp(),
        }
    }

    /// Monotone `ln`, clamping the input to the domain (hazards are
    /// reported separately when the clamp actually cuts).
    pub fn ln(self) -> Interval {
        Interval {
            lo: if self.lo <= 0.0 {
                f64::NEG_INFINITY
            } else {
                self.lo.ln()
            },
            hi: if self.hi <= 0.0 {
                f64::NEG_INFINITY
            } else {
                self.hi.ln()
            },
        }
    }

    /// Monotone `sqrt` with domain clamping.
    pub fn sqrt(self) -> Interval {
        Interval {
            lo: self.lo.max(0.0).sqrt(),
            hi: self.hi.max(0.0).sqrt(),
        }
    }

    /// `max(x, 0)`.
    pub fn relu(self) -> Interval {
        Interval {
            lo: self.lo.max(0.0),
            hi: self.hi.max(0.0),
        }
    }

    /// Leaky ReLU with slope `alpha` on the negative side.
    pub fn leaky_relu(self, alpha: f64) -> Interval {
        let f = |x: f64| if x >= 0.0 { x } else { alpha * x };
        let (a, b) = (f(self.lo), f(self.hi));
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// ELU: `x` for `x >= 0`, `alpha * (e^x - 1)` below.
    pub fn elu(self, alpha: f64) -> Interval {
        let f = |x: f64| if x >= 0.0 { x } else { alpha * (x.exp() - 1.0) };
        Interval {
            lo: f(self.lo),
            hi: f(self.hi),
        }
    }

    /// Sigmoid (monotone, range (0, 1)).
    pub fn sigmoid(self) -> Interval {
        let s = |x: f64| 1.0 / (1.0 + (-x).exp());
        Interval {
            lo: s(self.lo),
            hi: s(self.hi),
        }
    }

    /// Tanh (monotone, range (-1, 1)).
    pub fn tanh(self) -> Interval {
        Interval {
            lo: self.lo.tanh(),
            hi: self.hi.tanh(),
        }
    }

    /// `1 / max(x, eps)` — the tape's guarded reciprocal.
    pub fn recip(self, eps: f64) -> Interval {
        let lo_in = self.lo.max(eps);
        let hi_in = self.hi.max(eps);
        Interval {
            lo: 1.0 / hi_in,
            hi: 1.0 / lo_in,
        }
    }

    /// Sum of up to `n` elements each drawn from `self` (with possibly
    /// fewer than `n` participating, so 0 is always included).
    pub fn sum_of(self, n: usize) -> Interval {
        let n = n as f64;
        Interval {
            lo: (self.lo * n).min(0.0).min(self.lo),
            hi: (self.hi * n).max(0.0).max(self.hi),
        }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;
    /// `[a+c, b+d]`.
    fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
        }
    }
}

impl std::ops::Sub for Interval {
    type Output = Interval;
    /// `[a-d, b-c]`.
    fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo - o.hi,
            hi: self.hi - o.lo,
        }
    }
}

impl std::ops::Neg for Interval {
    type Output = Interval;
    /// `[-b, -a]`.
    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl std::ops::Mul for Interval {
    type Output = Interval;
    /// Product: min/max over endpoint products, with `0 * inf` resolved to
    /// 0 (the factor really is 0, so the product is 0 whatever the other
    /// operand could be).
    fn mul(self, o: Interval) -> Interval {
        fn p(a: f64, b: f64) -> f64 {
            let x = a * b;
            if x.is_nan() {
                0.0
            } else {
                x
            }
        }
        let cands = [
            p(self.lo, o.lo),
            p(self.lo, o.hi),
            p(self.hi, o.lo),
            p(self.hi, o.hi),
        ];
        Interval {
            lo: cands.iter().cloned().fold(f64::INFINITY, f64::min),
            hi: cands.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl std::ops::Div for Interval {
    type Output = Interval;
    /// Quotient. If the divisor may be 0 the result is unbounded (the
    /// analyzer reports the hazard separately).
    fn div(self, o: Interval) -> Interval {
        if o.contains_zero() {
            return Interval::unbounded();
        }
        self * Interval {
            lo: 1.0 / o.hi,
            hi: 1.0 / o.lo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_soundness() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(3.0, 4.0);
        assert_eq!(a + b, Interval::new(2.0, 6.0));
        assert_eq!(a - b, Interval::new(-5.0, -1.0));
        assert_eq!(a * b, Interval::new(-4.0, 8.0));
        assert!(a.contains_zero());
        assert!(!b.contains_zero());
    }

    #[test]
    fn div_by_zero_widens() {
        let a = Interval::new(1.0, 2.0);
        let z = Interval::new(-1.0, 1.0);
        assert_eq!(a / z, Interval::unbounded());
        let safe = a / Interval::new(2.0, 4.0);
        assert!((safe.lo - 0.25).abs() < 1e-12 && (safe.hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_times_unbounded_is_zero() {
        let z = Interval::point(0.0);
        let u = Interval::unbounded();
        assert_eq!(z * u, Interval::point(0.0));
    }

    #[test]
    fn guarded_recip_is_bounded() {
        let x = Interval::new(-5.0, 10.0);
        let r = x.recip(1e-6);
        assert!(r.lo > 0.0 && r.hi <= 1.0 / 1e-6 + 1.0);
    }

    #[test]
    fn activations_stay_in_range() {
        let u = Interval::unbounded();
        let s = u.sigmoid();
        assert!(s.lo >= 0.0 && s.hi <= 1.0);
        let t = u.tanh();
        assert!(t.lo >= -1.0 && t.hi <= 1.0);
        let r = u.relu();
        assert_eq!(r.lo, 0.0);
    }
}
