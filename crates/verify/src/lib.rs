//! # harp-verify
//!
//! Static analysis for `harp_tensor` tapes: catch silent-training-failure
//! bugs *before* a backward pass, instead of after a week of flat loss
//! curves.
//!
//! The analyzer consumes the read-only introspection API of
//! [`harp_tensor::Tape`] ([`Tape::nodes`](harp_tensor::Tape::nodes)) and
//! runs, in O(nodes + edges):
//!
//! * **Shape re-inference** — every node's output shape is re-derived from
//!   its inputs using an independent implementation of the op semantics and
//!   compared against what the tape recorded (`shape-mismatch`,
//!   `invalid-op`).
//! * **Gradient reachability** — every parameter injected on the tape must
//!   be reachable backward from the loss; an unreachable one trains at
//!   gradient zero forever (`unreachable-param`).
//! * **Dead-subgraph detection** — recorded nodes that contribute nothing
//!   to the loss (`dead-subgraph`).
//! * **Non-finite constants** — leaves containing NaN/±inf
//!   (`non-finite-constant`), and non-leaf values that went non-finite in
//!   the forward pass (`non-finite-value`).
//! * **Numerical-hazard lints** — interval abstract interpretation over the
//!   graph flags `ln`/`sqrt` whose input range reaches ≤ 0 without an
//!   epsilon guard (`unguarded-ln`, `unguarded-sqrt`), division by a range
//!   containing zero (`div-by-zero-risk`), and `exp` of an unbounded input,
//!   the softmax-without-max-subtraction pattern (`exp-unbounded`).
//!
//! ## Example
//!
//! ```
//! use harp_tensor::{ParamStore, Tape};
//! use harp_verify::{analyze, Severity};
//!
//! let mut store = ParamStore::new();
//! let w = store.register("w", vec![2], vec![0.1, -0.2]);
//! let orphan = store.register("orphan", vec![1], vec![0.0]);
//!
//! let mut tape = Tape::new();
//! let wv = tape.param(&store, w);
//! let _o = tape.param(&store, orphan); // injected but unused
//! let x = tape.constant(vec![2], vec![1.0, 2.0]);
//! let wx = tape.mul(wv, x);
//! let loss = tape.sum_all(wx);
//!
//! let report = analyze(&tape, loss, Some(&store));
//! assert!(!report.is_clean()); // 'orphan' never reaches the loss
//! assert_eq!(report.count(Severity::Error), 1);
//! ```
//!
//! `harp-core::train` runs this as a debug-build pre-flight on the first
//! training instance of every run, so HARP/DOTE/TEAL graph regressions
//! fail fast with a pointed diagnostic instead of a silent zero gradient.
//!
//! ## Determinism passes (v2)
//!
//! On top of the per-tape analyzer, the [`passes`] module proves the
//! repo's bitwise-determinism contract structurally:
//!
//! * [`audit_reduction_order`] — every float reduction accumulates in a
//!   statically fixed order (`reduction-order`,
//!   `tie-sensitive-reduction`).
//! * [`analyze_grad_aliasing`] — a planned parallel backward schedule
//!   never writes the same gradient region from two concurrent sections
//!   (`grad-alias`, `shared-param-fanin`, `invalid-sections`).
//! * [`check_epoch_cache`] — `precompute_epoch` + `forward_cached`
//!   covers exactly the same subgraph as the full forward
//!   (`cache-structure-mismatch`, `cache-divergence`, `cache-spliced`,
//!   `cache-unused`).
//!
//! `cargo xtask analyze` runs all of these over freshly recorded
//! HARP/DOTE/TEAL tapes and gates CI on the findings.

mod analyze;
mod interval;
pub mod passes;
mod report;
mod shapes;

pub use analyze::analyze;
pub use interval::Interval;
pub use passes::{analyze_grad_aliasing, audit_reduction_order, check_epoch_cache};
pub use report::{Diagnostic, GraphReport, Severity};
