//! The analyzer: one forward sweep (shape re-inference, value intervals,
//! non-finite scan, numerical-hazard lints) plus one backward sweep
//! (gradient reachability, dead-subgraph detection) over a recorded tape.

use harp_tensor::{Op, ParamStore, Shape, Tape, Var};

use crate::interval::Interval;
use crate::report::{Diagnostic, GraphReport, Severity};
use crate::shapes::infer_shape;

/// Statically analyze the graph that computes `loss` on `tape`.
///
/// Pass the model's `ParamStore` to get named parameters in diagnostics and
/// the params-never-injected check; pass `None` to analyze a store-less
/// graph. Runs in O(nodes + edges): a forward sweep then a backward sweep.
pub fn analyze(tape: &Tape, loss: Var, store: Option<&ParamStore>) -> GraphReport {
    let mut report = GraphReport::default();
    let n = tape.len();

    if loss.index() >= n {
        report.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            code: "loss-not-on-tape",
            node: None,
            message: format!(
                "loss handle #{} is not on this tape ({n} nodes)",
                loss.index()
            ),
        });
        return report;
    }

    // ---------------- forward sweep ----------------
    let mut shapes: Vec<Shape> = Vec::with_capacity(n);
    let mut ivs: Vec<Interval> = Vec::with_capacity(n);

    for node in tape.nodes() {
        let i = node.var.index();
        let input_shapes: Vec<&Shape> = node
            .op
            .inputs()
            .iter()
            .map(|v| &shapes[v.index()])
            .collect();

        // 1. independent shape re-inference vs the recorded shape
        match infer_shape(&node, &input_shapes) {
            Err(msg) => report.diagnostics.push(Diagnostic {
                severity: Severity::Error,
                code: "invalid-op",
                node: Some(i),
                message: format!("structurally invalid {}: {msg}", op_name(node.op)),
            }),
            Ok(Some(inferred)) if &inferred != node.shape => {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    code: "shape-mismatch",
                    node: Some(i),
                    message: format!(
                        "{} records shape {:?} but inputs imply {:?}",
                        op_name(node.op),
                        node.shape,
                        inferred
                    ),
                });
            }
            Ok(_) => {}
        }
        if node.shape.numel() != node.value.len() {
            report.diagnostics.push(Diagnostic {
                severity: Severity::Error,
                code: "shape-mismatch",
                node: Some(i),
                message: format!(
                    "shape {:?} implies {} elements but the value buffer holds {}",
                    node.shape,
                    node.shape.numel(),
                    node.value.len()
                ),
            });
        }
        shapes.push(node.shape.clone());

        // 2. non-finite values
        if let Some(bad) = node.value.iter().position(|x| !x.is_finite()) {
            if matches!(node.op, Op::Leaf) {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    code: "non-finite-constant",
                    node: Some(i),
                    message: format!(
                        "{} contains {} at flat index {bad}",
                        leaf_name(tape, node.var, store),
                        node.value[bad]
                    ),
                });
            } else {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Warn,
                    code: "non-finite-value",
                    node: Some(i),
                    message: format!(
                        "{} computed {} at flat index {bad} in the forward pass",
                        op_name(node.op),
                        node.value[bad]
                    ),
                });
            }
        }

        // 3. interval propagation + hazard lints
        let iv = transfer(tape, &node.var, node.op, &ivs, node.value, &mut report);
        ivs.push(iv);
    }

    // 4. loss must be a scalar for backward to be meaningful
    if shapes[loss.index()].numel() != 1 {
        report.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            code: "non-scalar-loss",
            node: Some(loss.index()),
            message: format!(
                "loss has shape {:?}; backward needs a single scalar",
                shapes[loss.index()]
            ),
        });
    }

    // ---------------- backward sweep ----------------
    // `reaches_loss[i]`: node i is the loss or one of its ancestors, i.e.
    // gradients flow back into it.
    let mut reaches_loss = vec![false; n];
    reaches_loss[loss.index()] = true;
    // `consumed[i]`: node i is an input of some later node.
    let mut consumed = vec![false; n];
    for node in tape.nodes().collect::<Vec<_>>().into_iter().rev() {
        let i = node.var.index();
        for input in node.op.inputs() {
            consumed[input.index()] = true;
            if reaches_loss[i] {
                reaches_loss[input.index()] = true;
            }
        }
    }

    // 5. every parameter injected on the tape must receive gradient
    let mut injected: Vec<harp_tensor::ParamId> = Vec::new();
    for node in tape.nodes() {
        if let Some(id) = node.param {
            injected.push(id);
            if !reaches_loss[node.var.index()] {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    code: "unreachable-param",
                    node: Some(node.var.index()),
                    message: format!(
                        "{} is injected but not reachable backward from the loss; \
                         its gradient will silently stay zero",
                        leaf_name(tape, node.var, store)
                    ),
                });
            }
        }
    }
    if let Some(store) = store {
        for id in store.ids() {
            if !injected.contains(&id) {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Info,
                    code: "param-not-injected",
                    node: None,
                    message: format!(
                        "parameter '{}' is registered in the store but never \
                         injected on this tape",
                        store.name(id)
                    ),
                });
            }
        }
    }

    // 6. dead subgraphs: report each dead *root* (a node nothing consumes
    // and that is not the loss) once, with the size of its dead cone.
    for node in tape.nodes() {
        let i = node.var.index();
        if !reaches_loss[i] && !consumed[i] {
            let cone = dead_cone_size(tape, node.var, &reaches_loss);
            report.diagnostics.push(Diagnostic {
                severity: Severity::Warn,
                code: "dead-subgraph",
                node: Some(i),
                message: format!(
                    "{} (and {} upstream node(s)) contribute(s) nothing to the loss",
                    op_name(node.op),
                    cone.saturating_sub(1)
                ),
            });
        }
    }

    report.diagnostics.sort_by_key(|d| (d.node, d.code));
    report
}

/// Number of ancestors of `root` (including itself) that do not reach the
/// loss — the work wasted recording this dead subgraph.
fn dead_cone_size(tape: &Tape, root: Var, reaches_loss: &[bool]) -> usize {
    let mut seen = vec![false; tape.len()];
    let mut stack = vec![root];
    let mut count = 0usize;
    while let Some(v) = stack.pop() {
        let i = v.index();
        if seen[i] || reaches_loss[i] {
            continue;
        }
        seen[i] = true;
        count += 1;
        stack.extend(tape.node(v).op.inputs());
    }
    count
}

/// Interval transfer function for one node, emitting hazard lints as a side
/// effect.
fn transfer(
    tape: &Tape,
    var: &Var,
    op: &Op,
    ivs: &[Interval],
    value: &[f32],
    report: &mut GraphReport,
) -> Interval {
    use Op::*;
    let iv = |v: &Var| ivs[v.index()];
    let i = var.index();
    let mut warn = |code: &'static str, message: String| {
        report.diagnostics.push(Diagnostic {
            severity: Severity::Warn,
            code,
            node: Some(i),
            message,
        });
    };
    match op {
        Leaf => {
            if tape.param_of(*var).is_some() {
                // training can move a parameter anywhere
                Interval::unbounded()
            } else {
                Interval::of_values(value)
            }
        }
        Add(a, b) => iv(a) + iv(b),
        Sub(a, b) => iv(a) - iv(b),
        Mul(a, b) => iv(a) * iv(b),
        Div(a, b) => {
            if iv(b).contains_zero() {
                warn(
                    "div-by-zero-risk",
                    format!(
                        "divisor range [{:.3e}, {:.3e}] includes 0; guard with \
                         recip(eps) or an additive epsilon",
                        iv(b).lo,
                        iv(b).hi
                    ),
                );
            }
            iv(a) / iv(b)
        }
        Neg(a) => -iv(a),
        Exp(a) => {
            if iv(a).hi == f64::INFINITY {
                warn(
                    "exp-unbounded",
                    "exp of an unbounded-above input can overflow; softmax-style \
                     constructions should subtract the max first (or use the fused \
                     softmax ops, which do)"
                        .to_string(),
                );
            }
            iv(a).exp()
        }
        Ln(a) => {
            if iv(a).lo <= 0.0 {
                warn(
                    "unguarded-ln",
                    format!(
                        "ln of range [{:.3e}, {:.3e}] which reaches {}; add an \
                         epsilon before the log",
                        iv(a).lo,
                        iv(a).hi,
                        if iv(a).contains_zero() || iv(a).hi < 0.0 {
                            "zero or below"
                        } else {
                            "non-positive values"
                        }
                    ),
                );
            }
            iv(a).ln()
        }
        Sqrt(a) => {
            if iv(a).lo <= 0.0 {
                warn(
                    "unguarded-sqrt",
                    format!(
                        "sqrt of range [{:.3e}, {:.3e}]: the gradient 1/(2*sqrt(x)) \
                         blows up at 0 and the domain excludes negatives; add an \
                         epsilon first",
                        iv(a).lo,
                        iv(a).hi
                    ),
                );
            }
            iv(a).sqrt()
        }
        Relu(a) => iv(a).relu(),
        LeakyRelu(a, alpha) => iv(a).leaky_relu(*alpha as f64),
        Elu(a, alpha) => iv(a).elu(*alpha as f64),
        Sigmoid(a) => iv(a).sigmoid(),
        Tanh(a) => iv(a).tanh(),
        MulScalar(a, c) => iv(a).scale(*c as f64),
        AddScalar(a, c) => iv(a).shift(*c as f64),
        Recip(a, eps) => iv(a).recip(*eps as f64),
        AddBias(a, b) => iv(a) + iv(b),
        MulRow(a, b) => iv(a) * iv(b),
        BroadcastScalar(a, _) => iv(a),
        MatMul(a, b) => {
            let k = inner_dim(tape, a);
            (iv(a) * iv(b)).sum_of(k)
        }
        MatMulBiasRelu(a, w, b) => {
            let k = inner_dim(tape, a);
            ((iv(a) * iv(w)).sum_of(k) + iv(b)).relu()
        }
        MatMulBiasLeakyRelu(a, w, b, alpha) => {
            let k = inner_dim(tape, a);
            ((iv(a) * iv(w)).sum_of(k) + iv(b)).leaky_relu(*alpha as f64)
        }
        BatchMatMul(a, b) => {
            let k = tape.shape(*a).last_dim();
            (iv(a) * iv(b)).sum_of(k)
        }
        TransposeLast2(a) | Reshape(a) | GatherRows(a, _) | SliceCols(a, _, _) => iv(a),
        ConcatCols(vs) | ConcatRows(vs) => vs
            .iter()
            .map(&iv)
            .reduce(Interval::hull)
            .unwrap_or_else(Interval::unbounded),
        SumAll(a) => iv(a).sum_of(tape.shape(*a).numel()),
        MeanAll(a) | MaxAll(a) | MeanLastDim(a) | SegmentMax(a, _, _) => iv(a),
        SumRows(a) => iv(a).sum_of(tape.shape(*a).leading_rows()),
        SegmentSum(a, seg, _) => iv(a).sum_of(seg.len()),
        SegmentSoftmax(_, _, _) | SoftmaxLastDim(_, _) => Interval::new(0.0, 1.0),
        LayerNorm(a, _) => {
            // normalized rows are bounded by sqrt(w) in magnitude, but the
            // cheap sound bound is enough for hazard detection
            let _ = a;
            let w = tape.shape(*var).last_dim() as f64;
            Interval::new(-w.sqrt(), w.sqrt())
        }
    }
}

fn inner_dim(tape: &Tape, a: &Var) -> usize {
    tape.shape(*a).last_dim()
}

/// Short name of a leaf for diagnostics: the parameter name when the leaf
/// has provenance, otherwise "constant #i".
fn leaf_name(tape: &Tape, v: Var, store: Option<&ParamStore>) -> String {
    match (tape.param_of(v), store) {
        (Some(id), Some(s)) => format!("parameter '{}'", s.name(id)),
        (Some(_), None) => format!("parameter leaf #{}", v.index()),
        _ => format!("constant #{}", v.index()),
    }
}

/// Stable human-readable op label for diagnostics.
pub(crate) fn op_name(op: &Op) -> &'static str {
    use Op::*;
    match op {
        Leaf => "leaf",
        Add(_, _) => "add",
        Sub(_, _) => "sub",
        Mul(_, _) => "mul",
        Div(_, _) => "div",
        Neg(_) => "neg",
        Exp(_) => "exp",
        Ln(_) => "ln",
        Sqrt(_) => "sqrt",
        Relu(_) => "relu",
        LeakyRelu(_, _) => "leaky_relu",
        Elu(_, _) => "elu",
        Sigmoid(_) => "sigmoid",
        Tanh(_) => "tanh",
        MulScalar(_, _) => "mul_scalar",
        AddScalar(_, _) => "add_scalar",
        Recip(_, _) => "recip",
        AddBias(_, _) => "add_bias",
        MulRow(_, _) => "mul_row",
        BroadcastScalar(_, _) => "broadcast_scalar",
        MatMul(_, _) => "matmul",
        MatMulBiasRelu(_, _, _) => "matmul_bias_relu",
        MatMulBiasLeakyRelu(_, _, _, _) => "matmul_bias_leaky_relu",
        BatchMatMul(_, _) => "batch_matmul",
        TransposeLast2(_) => "transpose_last2",
        Reshape(_) => "reshape",
        ConcatCols(_) => "concat_cols",
        ConcatRows(_) => "concat_rows",
        GatherRows(_, _) => "gather_rows",
        SliceCols(_, _, _) => "slice_cols",
        SumAll(_) => "sum_all",
        MeanAll(_) => "mean_all",
        MaxAll(_) => "max_all",
        SumRows(_) => "sum_rows",
        MeanLastDim(_) => "mean_last_dim",
        SegmentSum(_, _, _) => "segment_sum",
        SegmentMax(_, _, _) => "segment_max",
        SegmentSoftmax(_, _, _) => "segment_softmax",
        SoftmaxLastDim(_, _) => "softmax_last_dim",
        LayerNorm(_, _) => "layer_norm",
    }
}
