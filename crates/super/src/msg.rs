//! The typed IPC vocabulary between a supervisor and its trainer child.
//!
//! The wire carries JSON objects with a `type` tag; this module is the
//! single place that tag is interpreted. Decoding is strict: an unknown
//! tag, a missing field, or a field of the wrong JSON type is a
//! [`FrameError::BadMessage`] — hostile peers produce typed protocol
//! errors, never panics or silently-defaulted fields.

use serde_json::Value;

use crate::frame::FrameError;

/// Protocol revision spoken by both sides; the supervisor rejects a hello
/// with any other value.
pub const PROTO_VERSION: u64 = 1;

/// Messages the trainer child sends up to the supervisor.
#[derive(Clone, Debug, PartialEq)]
pub enum ChildMsg {
    /// First frame after exec: the child is alive and speaks `proto`.
    Hello {
        /// Child's OS pid (informational; the supervisor trusts waitpid).
        pid: u64,
        /// Protocol revision ([`PROTO_VERSION`]).
        proto: u64,
    },
    /// Liveness signal between progress frames.
    Heartbeat {
        /// Epoch the child is currently working on.
        epoch: u64,
    },
    /// One training epoch finished.
    Progress {
        /// 0-based epoch that finished.
        epoch: u64,
        /// Mean training loss of that epoch.
        loss: f64,
        /// Validation NormMLU after that epoch.
        val: f64,
    },
    /// The trained parameter file is on disk, ready to rendezvous.
    Ship {
        /// Parameter generation the file belongs to.
        generation: u64,
        /// Path of the written parameter file.
        path: String,
    },
    /// The child failed in a structured way (training error, bad job).
    Failed {
        /// Human-readable failure detail.
        detail: String,
    },
    /// Clean shutdown after a successful ship.
    Done,
}

/// Messages the supervisor sends down to the trainer child.
#[derive(Clone, Debug, PartialEq)]
pub enum SuperMsg {
    /// The job description, sent once right after spawn.
    Config {
        /// 0-based attempt number (0 = first run, n = nth restart).
        attempt: u64,
        /// Opaque job payload; the supervisor never interprets it.
        job: Value,
    },
    /// Polite stop request; the child should exit promptly.
    Shutdown,
}

impl ChildMsg {
    /// Encode for the wire.
    pub fn to_value(&self) -> Value {
        match self {
            ChildMsg::Hello { pid, proto } => serde_json::json!({
                "type": "hello", "pid": *pid as f64, "proto": *proto as f64,
            }),
            ChildMsg::Heartbeat { epoch } => serde_json::json!({
                "type": "heartbeat", "epoch": *epoch as f64,
            }),
            ChildMsg::Progress { epoch, loss, val } => serde_json::json!({
                "type": "progress", "epoch": *epoch as f64, "loss": loss, "val": val,
            }),
            ChildMsg::Ship { generation, path } => serde_json::json!({
                "type": "ship", "generation": *generation as f64, "path": path,
            }),
            ChildMsg::Failed { detail } => serde_json::json!({
                "type": "failed", "detail": detail,
            }),
            ChildMsg::Done => serde_json::json!({"type": "done"}),
        }
    }

    /// Strict decode from a wire value.
    pub fn from_value(v: &Value) -> Result<ChildMsg, FrameError> {
        match msg_type(v)? {
            "hello" => Ok(ChildMsg::Hello {
                pid: get_u64(v, "pid")?,
                proto: get_u64(v, "proto")?,
            }),
            "heartbeat" => Ok(ChildMsg::Heartbeat {
                epoch: get_u64(v, "epoch")?,
            }),
            "progress" => Ok(ChildMsg::Progress {
                epoch: get_u64(v, "epoch")?,
                loss: get_f64(v, "loss")?,
                val: get_f64(v, "val")?,
            }),
            "ship" => Ok(ChildMsg::Ship {
                generation: get_u64(v, "generation")?,
                path: get_str(v, "path")?,
            }),
            "failed" => Ok(ChildMsg::Failed {
                detail: get_str(v, "detail")?,
            }),
            "done" => Ok(ChildMsg::Done),
            other => Err(bad(format!("unknown child message type `{other}`"))),
        }
    }
}

impl SuperMsg {
    /// Encode for the wire.
    pub fn to_value(&self) -> Value {
        match self {
            SuperMsg::Config { attempt, job } => serde_json::json!({
                "type": "config", "attempt": *attempt as f64, "job": job.clone(),
            }),
            SuperMsg::Shutdown => serde_json::json!({"type": "shutdown"}),
        }
    }

    /// Strict decode from a wire value.
    pub fn from_value(v: &Value) -> Result<SuperMsg, FrameError> {
        match msg_type(v)? {
            "config" => Ok(SuperMsg::Config {
                attempt: get_u64(v, "attempt")?,
                job: v
                    .get("job")
                    .cloned()
                    .ok_or_else(|| bad("config message has no `job`".to_string()))?,
            }),
            "shutdown" => Ok(SuperMsg::Shutdown),
            other => Err(bad(format!("unknown supervisor message type `{other}`"))),
        }
    }
}

fn bad(msg: String) -> FrameError {
    FrameError::BadMessage(msg)
}

fn msg_type(v: &Value) -> Result<&str, FrameError> {
    v.get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("message has no string `type` tag".to_string()))
}

fn get_f64(v: &Value, key: &str) -> Result<f64, FrameError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| bad(format!("field `{key}` missing or not a number")))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, FrameError> {
    let f = get_f64(v, key)?;
    if f < 0.0 || f.fract() != 0.0 {
        return Err(bad(format!("field `{key}` is not a non-negative integer")));
    }
    Ok(f as u64) // lint: allow(as-cast) — checked non-negative integer
}

fn get_str(v: &Value, key: &str) -> Result<String, FrameError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("field `{key}` missing or not a string")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_messages_round_trip() {
        for msg in [
            ChildMsg::Hello { pid: 42, proto: 1 },
            ChildMsg::Heartbeat { epoch: 3 },
            ChildMsg::Progress {
                epoch: 2,
                loss: 0.5,
                val: 1.01,
            },
            ChildMsg::Ship {
                generation: 7,
                path: "/tmp/p.json".to_string(),
            },
            ChildMsg::Failed {
                detail: "boom".to_string(),
            },
            ChildMsg::Done,
        ] {
            assert_eq!(ChildMsg::from_value(&msg.to_value()).unwrap(), msg);
        }
    }

    #[test]
    fn super_messages_round_trip() {
        for msg in [
            SuperMsg::Config {
                attempt: 2,
                job: serde_json::json!({"k": 1}),
            },
            SuperMsg::Shutdown,
        ] {
            assert_eq!(SuperMsg::from_value(&msg.to_value()).unwrap(), msg);
        }
    }

    #[test]
    fn strict_decode_rejects_malformed_messages() {
        for bad in [
            serde_json::json!({}),
            serde_json::json!({"type": "warp"}),
            serde_json::json!({"type": "hello", "pid": 1}),
            serde_json::json!({"type": "heartbeat", "epoch": "one"}),
            serde_json::json!({"type": "heartbeat", "epoch": -1}),
            serde_json::json!({"type": "heartbeat", "epoch": 1.5}),
            serde_json::json!({"type": "ship", "generation": 1}),
            serde_json::json!([1, 2, 3]),
        ] {
            assert!(
                matches!(ChildMsg::from_value(&bad), Err(FrameError::BadMessage(_))),
                "{bad}"
            );
        }
        assert!(matches!(
            SuperMsg::from_value(&serde_json::json!({"type": "config"})),
            Err(FrameError::BadMessage(_))
        ));
    }
}
