//! # harp-super
//!
//! Process supervision for the HARP stack: run a trainer in its **own
//! process** (its own failure domain) and keep the serving fleet alive
//! through trainer crashes, hangs, and garbled IPC.
//!
//! Three layers:
//!
//! * [`frame`] — length-prefixed NDJSON framing over stdin/stdout pipes.
//!   Every hostile input (garbage length line, oversized claim, mid-frame
//!   EOF, non-JSON payload) is a typed [`FrameError`], never a panic.
//! * [`msg`] — the typed message vocabulary ([`ChildMsg`], [`SuperMsg`]):
//!   hello/config, heartbeat, progress, ship, shutdown. Decoding is
//!   strict; schema violations are protocol errors.
//! * [`process`] / [`supervisor`] — spawn/waitpid child management with
//!   guaranteed reaping (no zombies, no leaks), a heartbeat watchdog with
//!   startup-grace and per-epoch deadlines, seeded-deterministic
//!   exponential backoff with jitter, and the escalation ladder:
//!   restart-from-snapshot -> restart-from-params-only -> trainer dead
//!   (fleet serves last-good parameters; staleness is the caller's
//!   surfaced signal).
//!
//! The crate is deliberately generic: the job payload is an opaque JSON
//! value, so the supervisor knows nothing about training. `harp-lifecycle`
//! provides the trainer-side entrypoint (`harp-trainerd`) and folds
//! supervisor outcomes into its deterministic virtual-clock event log.

mod frame;
mod msg;
mod process;
mod supervisor;

pub use frame::{encode_frame, write_frame, FrameError, FrameReader, MAX_FRAME_BYTES};
pub use msg::{ChildMsg, SuperMsg, PROTO_VERSION};
pub use process::{kill_self_hard, status_label, ChildProc};
pub use supervisor::{supervise, Rung, SupervisorConfig, SupervisorOutcome};
