//! Length-prefixed NDJSON framing for the supervisor <-> trainer pipe.
//!
//! One frame on the wire is
//!
//! ```text
//! <decimal payload length>\n<payload JSON>\n
//! ```
//!
//! The explicit length line lets the reader allocate exactly once and
//! detect truncation (a torn write or a killed peer) as a *typed* error
//! instead of a hung or corrupted parse. Everything hostile — garbage in
//! the length line, an oversized claim, a mid-frame EOF, payload bytes
//! that are not JSON — maps to a [`FrameError`] variant; the reader never
//! panics on wire bytes.

use std::fmt;
use std::io::{self, BufRead, Write};

use serde_json::Value;

/// Default cap on a single frame's payload. Generous because the config
/// frame carries a whole training window; a hostile length claim beyond
/// the cap is rejected *before* any allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Most digits a length line may carry (enough for any length under the
/// cap; anything longer is garbage, not a bigger frame).
const MAX_LEN_DIGITS: usize = 10;

/// A wire-level protocol violation (or I/O failure) while reading or
/// decoding one frame. Every variant is a *typed* outcome: hostile bytes
/// on the pipe surface here, never as a panic.
#[derive(Debug)]
pub enum FrameError {
    /// The length line is not a short run of ASCII digits.
    BadLengthLine(String),
    /// The length line claims a payload larger than the reader's cap.
    Oversize {
        /// Claimed payload length.
        len: usize,
        /// The reader's configured cap.
        max: usize,
    },
    /// The stream ended inside a frame (torn write / killed peer).
    TruncatedFrame {
        /// Bytes the frame still owed when the stream ended.
        missing: usize,
    },
    /// The byte after the payload was not the `\n` terminator.
    MissingTerminator(u8),
    /// The payload is not valid UTF-8 JSON.
    BadJson(String),
    /// The message decoded as JSON but violates the typed message schema.
    BadMessage(String),
    /// A real I/O error from the underlying pipe.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadLengthLine(s) => write!(f, "bad frame length line {s:?}"),
            FrameError::Oversize { len, max } => {
                write!(f, "frame claims {len} bytes, cap is {max}")
            }
            FrameError::TruncatedFrame { missing } => {
                write!(f, "stream ended mid-frame ({missing} bytes missing)")
            }
            FrameError::MissingTerminator(b) => {
                write!(f, "frame not terminated by newline (got byte {b:#04x})")
            }
            FrameError::BadJson(e) => write!(f, "frame payload is not JSON: {e}"),
            FrameError::BadMessage(e) => write!(f, "frame is not a valid message: {e}"),
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads frames off a buffered pipe with a payload-size cap.
pub struct FrameReader<R> {
    inner: R,
    max: usize,
}

impl<R: BufRead> FrameReader<R> {
    /// A reader with the default [`MAX_FRAME_BYTES`] cap.
    pub fn new(inner: R) -> Self {
        Self::with_max(inner, MAX_FRAME_BYTES)
    }

    /// A reader with an explicit payload cap.
    pub fn with_max(inner: R, max: usize) -> Self {
        FrameReader { inner, max }
    }

    /// Read one frame. `Ok(None)` is a clean EOF *between* frames; every
    /// other irregularity is a typed [`FrameError`].
    pub fn read_frame(&mut self) -> Result<Option<Value>, FrameError> {
        // --- length line, byte by byte ---
        let mut line: Vec<u8> = Vec::with_capacity(MAX_LEN_DIGITS);
        loop {
            let mut b = [0u8; 1];
            match self.inner.read(&mut b) {
                Ok(0) => {
                    if line.is_empty() {
                        return Ok(None); // clean end of stream
                    }
                    return Err(FrameError::TruncatedFrame { missing: 1 });
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
            if b[0] == b'\n' {
                break;
            }
            line.push(b[0]);
            if line.len() > MAX_LEN_DIGITS {
                return Err(FrameError::BadLengthLine(lossy(&line)));
            }
        }
        if line.is_empty() || !line.iter().all(u8::is_ascii_digit) {
            return Err(FrameError::BadLengthLine(lossy(&line)));
        }
        let len: usize = std::str::from_utf8(&line)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| FrameError::BadLengthLine(lossy(&line)))?;
        if len > self.max {
            return Err(FrameError::Oversize { len, max: self.max });
        }

        // --- payload + terminator ---
        let mut payload = vec![0u8; len];
        read_exact_or_truncated(&mut self.inner, &mut payload)?;
        let mut term = [0u8; 1];
        read_exact_or_truncated(&mut self.inner, &mut term)?;
        if term[0] != b'\n' {
            return Err(FrameError::MissingTerminator(term[0]));
        }

        let text = std::str::from_utf8(&payload).map_err(|e| FrameError::BadJson(e.to_string()))?;
        serde_json::from_str(text)
            .map(Some)
            .map_err(|e| FrameError::BadJson(e.to_string()))
    }
}

/// `read_exact` that turns EOF into [`FrameError::TruncatedFrame`] with
/// the number of bytes still owed.
fn read_exact_or_truncated<R: BufRead>(r: &mut R, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::TruncatedFrame {
                    missing: buf.len() - filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

fn lossy(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// Serialize `v` into one complete frame (length line + payload + `\n`).
/// Exposed separately from [`write_frame`] so chaos hooks can mangle the
/// bytes before they hit the pipe.
pub fn encode_frame(v: &Value) -> Vec<u8> {
    let payload = v.to_string();
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(payload.len().to_string().as_bytes());
    out.push(b'\n');
    out.extend_from_slice(payload.as_bytes());
    out.push(b'\n');
    out
}

/// Write one frame and flush (a frame is only useful once the peer can
/// see all of it).
pub fn write_frame(w: &mut impl Write, v: &Value) -> io::Result<()> {
    w.write_all(&encode_frame(v))?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read_all(bytes: &[u8]) -> Result<Option<Value>, FrameError> {
        FrameReader::new(BufReader::new(bytes)).read_frame()
    }

    #[test]
    fn round_trips_a_frame() {
        let v = serde_json::json!({"type": "heartbeat", "epoch": 3});
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        let mut r = FrameReader::new(BufReader::new(buf.as_slice()));
        assert_eq!(r.read_frame().unwrap(), Some(v));
        assert!(r.read_frame().unwrap().is_none(), "clean EOF after frame");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_all(b"").unwrap().is_none());
    }

    #[test]
    fn garbage_length_line_is_typed() {
        for bad in [&b"xyz\n{}\n"[..], b"12a\n", b"-3\n", b"\n{}\n"] {
            assert!(
                matches!(read_all(bad), Err(FrameError::BadLengthLine(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn oversized_claim_is_rejected_before_allocation() {
        let mut r = FrameReader::with_max(BufReader::new(&b"999999\n"[..]), 1024);
        assert!(matches!(
            r.read_frame(),
            Err(FrameError::Oversize {
                len: 999_999,
                max: 1024
            })
        ));
    }

    #[test]
    fn mid_frame_eof_is_truncation() {
        // claims 10 bytes, delivers 4
        assert!(matches!(
            read_all(b"10\n{\"a\""),
            Err(FrameError::TruncatedFrame { missing: 6 })
        ));
        // payload complete but terminator missing
        assert!(matches!(
            read_all(b"2\n{}"),
            Err(FrameError::TruncatedFrame { missing: 1 })
        ));
        // EOF inside the length line
        assert!(matches!(
            read_all(b"12"),
            Err(FrameError::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn non_json_payload_is_typed() {
        assert!(matches!(read_all(b"3\nabc\n"), Err(FrameError::BadJson(_))));
    }

    #[test]
    fn wrong_terminator_is_typed() {
        assert!(matches!(
            read_all(b"2\n{}X"),
            Err(FrameError::MissingTerminator(b'X'))
        ));
    }
}
