//! The supervisor: runs one trainer job in a child process, watches its
//! heartbeat, and climbs an escalation ladder when the child misbehaves.
//!
//! Ladder, in order:
//!
//! 1. **restart from last snapshot** (first `snapshot_budget` restarts) —
//!    the child's `checkpoint_dir` is intact, so resume is bitwise-exact;
//! 2. **restart from params only** (remaining restarts) — the caller's
//!    `on_restart` hook wipes the checkpoint dir and the child fine-tunes
//!    again from the warm-start parameters;
//! 3. **declare the trainer dead** once the restart budget is exhausted —
//!    the fleet keeps serving its last good generation and the caller
//!    surfaces the resulting staleness.
//!
//! Restart pacing is seeded-deterministic exponential backoff with
//! jitter. All wall-clock effects stay inside this module; everything the
//! caller folds into a deterministic event log ([`SupervisorOutcome::log`])
//! is a pure function of the child's behavior, never of timing.

use std::io::BufReader;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

use serde_json::Value;

use crate::frame::{write_frame, FrameReader, MAX_FRAME_BYTES};
use crate::msg::{ChildMsg, SuperMsg, PROTO_VERSION};
use crate::process::{status_label, ChildProc};

/// Everything a supervised run needs: how to exec the child, the opaque
/// job to hand it, and the watchdog/restart policy.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Child executable.
    pub exe: PathBuf,
    /// Arguments passed to the child.
    pub args: Vec<String>,
    /// Extra environment entries for the child (inherits the rest).
    pub envs: Vec<(String, String)>,
    /// Opaque job payload delivered in the config frame; the supervisor
    /// never interprets it.
    pub job: Value,
    /// Deadline for the child's hello frame after spawn.
    pub startup_grace_ms: u64,
    /// Deadline between frames once the child said hello (per-epoch
    /// liveness: progress and heartbeat frames both reset it).
    pub heartbeat_ms: u64,
    /// SIGTERM grace before SIGKILL when tearing a child down.
    pub term_grace_ms: u64,
    /// Total restarts allowed before the trainer is declared dead.
    pub restart_budget: u64,
    /// How many of those restarts resume from the last snapshot; the rest
    /// fall back to the params-only rung.
    pub snapshot_budget: u64,
    /// Backoff before restart n is `min(base * 2^(n-1), max) + jitter`.
    pub backoff_base_ms: u64,
    /// Backoff ceiling (before jitter).
    pub backoff_max_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Per-frame payload cap for the child's stdout stream.
    pub max_frame_bytes: usize,
}

impl SupervisorConfig {
    /// Policy defaults for `exe` + `job`: 10 s startup grace, 30 s
    /// heartbeat, 2 s term grace, 5 restarts (3 from snapshot), 50 ms
    /// backoff base capped at 2 s.
    pub fn new(exe: PathBuf, job: Value) -> Self {
        SupervisorConfig {
            exe,
            args: Vec::new(),
            envs: Vec::new(),
            job,
            startup_grace_ms: 10_000,
            heartbeat_ms: 30_000,
            term_grace_ms: 2_000,
            restart_budget: 5,
            snapshot_budget: 3,
            backoff_base_ms: 50,
            backoff_max_ms: 2_000,
            seed: 0,
            max_frame_bytes: MAX_FRAME_BYTES,
        }
    }

    /// Apply the `HARP_SUPER_*` env knobs (heartbeat interval, restart
    /// budget, backoff base, term grace). Malformed values warn through
    /// `super.env_fallback` and keep defaults.
    pub fn apply_env(mut self) -> Self {
        if let Ok(raw) = std::env::var("HARP_SUPER_HEARTBEAT_MS") {
            match raw.parse::<u64>() {
                Ok(ms) if ms > 0 => self.heartbeat_ms = ms,
                _ => warn_knob("HARP_SUPER_HEARTBEAT_MS", &raw),
            }
        }
        if let Ok(raw) = std::env::var("HARP_SUPER_RESTART_BUDGET") {
            match raw.parse::<u64>() {
                Ok(n) => self.restart_budget = n,
                Err(_) => warn_knob("HARP_SUPER_RESTART_BUDGET", &raw),
            }
        }
        if let Ok(raw) = std::env::var("HARP_SUPER_BACKOFF_MS") {
            match raw.parse::<u64>() {
                Ok(ms) => self.backoff_base_ms = ms,
                Err(_) => warn_knob("HARP_SUPER_BACKOFF_MS", &raw),
            }
        }
        if let Ok(raw) = std::env::var("HARP_SUPER_TERM_GRACE_MS") {
            match raw.parse::<u64>() {
                Ok(ms) if ms > 0 => self.term_grace_ms = ms,
                _ => warn_knob("HARP_SUPER_TERM_GRACE_MS", &raw),
            }
        }
        self
    }
}

fn warn_knob(knob: &'static str, raw: &str) {
    harp_obs::warn_always(
        "super.env_fallback",
        &[("knob", knob.into()), ("raw", raw.to_string().into())],
    );
}

/// Which escalation rung a restart runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// The checkpoint dir is intact; the child resumes bitwise-exactly.
    FromSnapshot,
    /// The caller wiped the checkpoint dir; the child re-fine-tunes from
    /// the warm-start parameters alone.
    ParamsOnly,
}

impl Rung {
    /// Stable name used in logs and events.
    pub fn name(self) -> &'static str {
        match self {
            Rung::FromSnapshot => "snapshot",
            Rung::ParamsOnly => "params-only",
        }
    }
}

/// What one supervised job ended as. `log` is deterministic (logical
/// events only — attempts, rungs, reasons — never pids or timings).
#[derive(Debug)]
pub struct SupervisorOutcome {
    /// `(generation, path)` of the shipped parameter file, if any.
    pub shipped: Option<(u64, String)>,
    /// Restarts consumed (0 = first attempt succeeded).
    pub restarts: u64,
    /// Frames that violated the wire protocol (garbled, truncated, bad
    /// schema).
    pub ipc_errors: u64,
    /// Watchdog deadline misses (hung or silent child).
    pub heartbeat_misses: u64,
    /// True when the restart budget ran out without a ship.
    pub dead: bool,
    /// Final failure reason when `dead` (empty otherwise).
    pub detail: String,
    /// Deterministic logical event log for the caller's records.
    pub log: Vec<String>,
}

/// How one attempt ended (internal).
enum AttemptEnd {
    Shipped {
        generation: u64,
        path: String,
    },
    Failed {
        reason: String,
        ipc_error: bool,
        watchdog: bool,
    },
}

/// Run `cfg.job` under supervision until it ships or the restart budget
/// is exhausted. `on_restart(attempt, rung)` runs before each restart —
/// on the [`Rung::ParamsOnly`] rung it must wipe the child's checkpoint
/// dir so the re-run cannot resume from (possibly poisoned) snapshots.
pub fn supervise(
    cfg: &SupervisorConfig,
    on_restart: &mut dyn FnMut(u64, Rung),
) -> SupervisorOutcome {
    let mut out = SupervisorOutcome {
        shipped: None,
        restarts: 0,
        ipc_errors: 0,
        heartbeat_misses: 0,
        dead: false,
        detail: String::new(),
        log: Vec::new(),
    };
    let mut attempt: u64 = 0;
    loop {
        if attempt > 0 {
            let rung = if attempt <= cfg.snapshot_budget {
                Rung::FromSnapshot
            } else {
                Rung::ParamsOnly
            };
            on_restart(attempt, rung);
            out.restarts += 1;
            out.log
                .push(format!("restart attempt={attempt} rung={}", rung.name()));
            harp_obs::event("super.restart")
                .field("attempt", attempt)
                .field("rung", rung.name())
                .emit();
            std::thread::sleep(Duration::from_millis(backoff_ms(cfg, attempt)));
        }
        match run_attempt(cfg, attempt) {
            AttemptEnd::Shipped { generation, path } => {
                out.log
                    .push(format!("ship attempt={attempt} gen={generation}"));
                harp_obs::event("super.ship")
                    .field("attempt", attempt)
                    .field("generation", generation)
                    .emit();
                out.shipped = Some((generation, path));
                return out;
            }
            AttemptEnd::Failed {
                reason,
                ipc_error,
                watchdog,
            } => {
                if ipc_error {
                    out.ipc_errors += 1;
                    harp_obs::event("super.ipc_error")
                        .field("attempt", attempt)
                        .field("reason", reason.clone())
                        .emit();
                }
                if watchdog {
                    out.heartbeat_misses += 1;
                    harp_obs::event("super.watchdog_miss")
                        .field("attempt", attempt)
                        .emit();
                }
                out.log.push(format!("attempt={attempt} failed: {reason}"));
                if attempt >= cfg.restart_budget {
                    out.dead = true;
                    out.detail = reason;
                    out.log
                        .push(format!("trainer_dead restarts={}", out.restarts));
                    harp_obs::warn_always(
                        "super.dead",
                        &[
                            ("restarts", out.restarts.into()),
                            ("detail", out.detail.clone().into()),
                        ],
                    );
                    return out;
                }
            }
        }
        attempt += 1;
    }
}

/// Deterministic backoff before restart `attempt` (>= 1): exponential in
/// the attempt number, capped, plus seeded jitter in `[0, base]`.
fn backoff_ms(cfg: &SupervisorConfig, attempt: u64) -> u64 {
    let shift = (attempt - 1).min(16); // lint-free saturation guard
    let expo = cfg
        .backoff_base_ms
        .saturating_mul(1u64 << shift)
        .min(cfg.backoff_max_ms);
    let jitter = splitmix64(cfg.seed ^ attempt) % (cfg.backoff_base_ms + 1);
    expo + jitter
}

/// SplitMix64 — the workspace's standard tiny mixer, reused for jitter.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One spawn-to-reap cycle of the child. Always reaps: every exit path
/// runs the polite-shutdown/terminate teardown (or has already waited).
fn run_attempt(cfg: &SupervisorConfig, attempt: u64) -> AttemptEnd {
    let spawned = ChildProc::spawn(&cfg.exe, &cfg.args, &cfg.envs);
    let (mut child, mut stdin, stdout) = match spawned {
        Ok(t) => t,
        Err(e) => {
            return AttemptEnd::Failed {
                reason: format!("spawn failed: {e}"),
                ipc_error: false,
                watchdog: false,
            }
        }
    };
    harp_obs::event("super.spawn")
        .field("attempt", attempt)
        .field("pid", child.pid())
        .emit();

    let config = SuperMsg::Config {
        attempt,
        job: cfg.job.clone(),
    };
    if let Err(e) = write_frame(&mut stdin, &config.to_value()) {
        let status = child
            .terminate(Duration::from_millis(cfg.term_grace_ms))
            .map(status_label)
            .unwrap_or_else(|we| format!("unreapable: {we}"));
        return AttemptEnd::Failed {
            reason: format!("config write failed ({e}); child {status}"),
            ipc_error: false,
            watchdog: false,
        };
    }

    // Reader thread: frames (and frame errors) flow over a channel so the
    // watchdog is a recv_timeout, not a poll loop. The thread exits on
    // EOF/error; after the child is reaped its pipe EOFs, so the join at
    // the bottom never hangs.
    let (tx, rx) = mpsc::channel::<Result<Option<Value>, crate::frame::FrameError>>();
    let max = cfg.max_frame_bytes;
    let reader = std::thread::spawn(move || {
        let mut frames = FrameReader::with_max(BufReader::new(stdout), max);
        loop {
            match frames.read_frame() {
                Ok(Some(v)) => {
                    if tx.send(Ok(Some(v))).is_err() {
                        break;
                    }
                }
                other => {
                    let _ = tx.send(other);
                    break;
                }
            }
        }
    });

    let mut deadline = Duration::from_millis(cfg.startup_grace_ms);
    let mut phase = "startup";
    let mut shipped: Option<(u64, String)> = None;
    let mut reaped_status: Option<String> = None;
    let end = loop {
        let event = match rx.recv_timeout(deadline) {
            Ok(ev) => ev,
            Err(_) => {
                break AttemptEnd::Failed {
                    reason: format!(
                        "watchdog: no frame within {}ms (phase {phase})",
                        deadline.as_millis()
                    ),
                    ipc_error: false,
                    watchdog: true,
                }
            }
        };
        match event {
            Ok(Some(v)) => match ChildMsg::from_value(&v) {
                Ok(ChildMsg::Hello { proto, .. }) => {
                    if proto != PROTO_VERSION {
                        break AttemptEnd::Failed {
                            reason: format!(
                                "protocol mismatch: child speaks v{proto}, supervisor v{PROTO_VERSION}"
                            ),
                            ipc_error: true,
                            watchdog: false,
                        };
                    }
                    phase = "train";
                    deadline = Duration::from_millis(cfg.heartbeat_ms);
                }
                Ok(ChildMsg::Heartbeat { .. }) => {}
                Ok(ChildMsg::Progress { epoch, loss, val }) => {
                    harp_obs::event("super.progress")
                        .field("attempt", attempt)
                        .field("epoch", epoch)
                        .field("loss", loss)
                        .field("val", val)
                        .emit();
                }
                Ok(ChildMsg::Ship { generation, path }) => {
                    shipped = Some((generation, path));
                    phase = "shutdown";
                }
                Ok(ChildMsg::Done) => match shipped.take() {
                    Some((generation, path)) => break AttemptEnd::Shipped { generation, path },
                    None => {
                        break AttemptEnd::Failed {
                            reason: "child reported done without shipping".to_string(),
                            ipc_error: true,
                            watchdog: false,
                        }
                    }
                },
                Ok(ChildMsg::Failed { detail }) => {
                    break AttemptEnd::Failed {
                        reason: format!("child failed: {detail}"),
                        ipc_error: false,
                        watchdog: false,
                    }
                }
                Err(e) => {
                    break AttemptEnd::Failed {
                        reason: format!("protocol error: {e}"),
                        ipc_error: true,
                        watchdog: false,
                    }
                }
            },
            Ok(None) => {
                // EOF: the child closed stdout. Reap it now so the exit
                // status (deterministic for scripted faults) is the reason.
                let status = child
                    .wait()
                    .map(status_label)
                    .unwrap_or_else(|e| format!("unreapable: {e}"));
                reaped_status = Some(status.clone());
                match shipped.take() {
                    // shipped then died before `done`: the parameter file
                    // is on disk and complete — accept it
                    Some((generation, path)) => break AttemptEnd::Shipped { generation, path },
                    None => {
                        break AttemptEnd::Failed {
                            reason: format!("child {status} before shipping"),
                            ipc_error: false,
                            watchdog: false,
                        }
                    }
                }
            }
            Err(e) => {
                break AttemptEnd::Failed {
                    reason: format!("ipc: {e}"),
                    ipc_error: true,
                    watchdog: false,
                }
            }
        }
    };

    // Teardown: polite shutdown frame, then SIGTERM-grace-SIGKILL unless
    // the EOF path already reaped. The reader thread ends at pipe EOF.
    if reaped_status.is_none() {
        let _ = write_frame(&mut stdin, &SuperMsg::Shutdown.to_value());
        drop(stdin);
        let _ = child.terminate(Duration::from_millis(cfg.term_grace_ms));
    }
    let _ = reader.join();
    end
}
