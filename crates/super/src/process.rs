//! Child process lifecycle: spawn with piped stdio, signal, reap.
//!
//! The invariant this module owes the rest of the stack: **no zombies and
//! no leaked children**. Every [`ChildProc`] is reaped exactly once — by
//! [`ChildProc::wait`], by [`ChildProc::terminate`], or (as a last
//! resort) by `Drop`, which hard-kills and reaps whatever is still
//! running when the handle goes away.

use std::io;
use std::path::Path;
use std::process::{Child, ChildStdin, ChildStdout, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// Raw signal FFI: two libc calls with integer-only arguments, wrapped
/// immediately into safe helpers.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    pub const SIGTERM: i32 = 15;
    pub const SIGKILL: i32 = 9;

    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
        fn getpid() -> i32;
    }

    /// Send `sig` to `pid`. Errors (e.g. the process is already gone) are
    /// deliberately ignored: the follow-up `wait` is the source of truth.
    pub fn send(pid: u32, sig: i32) {
        let pid = i32::try_from(pid).unwrap_or(i32::MAX);
        // SAFETY: integer-only syscall; no pointers cross the boundary.
        let _ = unsafe { kill(pid, sig) };
    }

    /// This process's own pid.
    pub fn self_pid() -> u32 {
        // SAFETY: no arguments, returns the caller's pid.
        let pid = unsafe { getpid() };
        u32::try_from(pid).unwrap_or(0)
    }
}

/// SIGKILL the *current* process — no unwinding, no destructors, no
/// atexit. This is the chaos layer's "trainer crashed for real" primitive:
/// unlike `panic!` or `abort()` it cannot be caught, and unlike
/// `process::exit` it skips every cleanup path, exactly like an OOM kill.
#[cfg(unix)]
pub fn kill_self_hard() -> ! {
    sys::send(sys::self_pid(), sys::SIGKILL);
    // SIGKILL delivery can race the return from kill(2); park until it
    // lands rather than execute even one more instruction of caller code.
    loop {
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Non-unix fallback: the closest thing to an uncatchable kill.
#[cfg(not(unix))]
pub fn kill_self_hard() -> ! {
    std::process::abort()
}

/// How often [`ChildProc::wait_timeout`] polls `try_wait`.
const REAP_POLL: Duration = Duration::from_millis(5);

/// A spawned child with piped stdin/stdout and guaranteed reaping.
pub struct ChildProc {
    child: Child,
    reaped: bool,
}

impl ChildProc {
    /// Spawn `exe args...` with `envs` added to the inherited environment,
    /// stdin/stdout piped (the IPC channel), stderr inherited (diagnostics
    /// flow straight through). Returns the handle plus both pipe ends.
    pub fn spawn(
        exe: &Path,
        args: &[String],
        envs: &[(String, String)],
    ) -> io::Result<(ChildProc, ChildStdin, ChildStdout)> {
        let mut cmd = Command::new(exe);
        cmd.args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn()?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "child stdin pipe missing"))?;
        let stdout = child.stdout.take().ok_or_else(|| {
            io::Error::new(io::ErrorKind::BrokenPipe, "child stdout pipe missing")
        })?;
        Ok((
            ChildProc {
                child,
                reaped: false,
            },
            stdin,
            stdout,
        ))
    }

    /// OS pid of the child.
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Block until the child exits and reap it.
    pub fn wait(&mut self) -> io::Result<ExitStatus> {
        let status = self.child.wait()?;
        self.reaped = true;
        Ok(status)
    }

    /// Poll-wait up to `timeout`; `Ok(None)` means it is still running.
    pub fn wait_timeout(&mut self, timeout: Duration) -> io::Result<Option<ExitStatus>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = self.child.try_wait()? {
                self.reaped = true;
                return Ok(Some(status));
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(REAP_POLL);
        }
    }

    /// Clean kill semantics: SIGTERM, wait up to `grace`, then SIGKILL and
    /// reap unconditionally. Always returns the final exit status.
    pub fn terminate(&mut self, grace: Duration) -> io::Result<ExitStatus> {
        if self.reaped {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "child already reaped",
            ));
        }
        #[cfg(unix)]
        sys::send(self.pid(), sys::SIGTERM);
        #[cfg(not(unix))]
        let _ = self.child.kill();
        if let Some(status) = self.wait_timeout(grace)? {
            return Ok(status);
        }
        #[cfg(unix)]
        sys::send(self.pid(), sys::SIGKILL);
        #[cfg(not(unix))]
        let _ = self.child.kill();
        self.wait()
    }
}

impl Drop for ChildProc {
    fn drop(&mut self) {
        if !self.reaped {
            // last-resort containment: a dropped handle must not leak a
            // running child or leave a zombie behind
            #[cfg(unix)]
            sys::send(self.pid(), sys::SIGKILL);
            #[cfg(not(unix))]
            let _ = self.child.kill();
            let _ = self.child.wait();
            self.reaped = true;
        }
    }
}

/// A deterministic, wall-clock-free label for an exit status: `exit(N)`
/// for a normal exit, `signal(N)` for a signal death. Used in supervisor
/// logs that must be bitwise-reproducible across runs.
pub fn status_label(status: ExitStatus) -> String {
    if let Some(code) = status.code() {
        return format!("exit({code})");
    }
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return format!("signal({sig})");
        }
    }
    "unknown".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sh(script: &str) -> (ChildProc, ChildStdin, ChildStdout) {
        ChildProc::spawn(
            &PathBuf::from("/bin/sh"),
            &["-c".to_string(), script.to_string()],
            &[],
        )
        .expect("spawn /bin/sh")
    }

    #[test]
    fn wait_reaps_a_clean_exit() {
        let (mut child, _in, _out) = sh("exit 7");
        let status = child.wait().unwrap();
        assert_eq!(status.code(), Some(7));
        assert_eq!(status_label(status), "exit(7)");
    }

    #[test]
    fn terminate_escalates_to_sigkill_for_a_term_ignoring_child() {
        // the child traps SIGTERM, so only the SIGKILL rung can end it;
        // it echoes once the trap is armed so the test can't race it
        let (mut child, _in, mut out) =
            sh("trap '' TERM; echo armed; while :; do sleep 0.05; done");
        let mut ready = [0u8; 6];
        io::Read::read_exact(&mut out, &mut ready).expect("trap armed marker");
        let status = child.terminate(Duration::from_millis(200)).unwrap();
        assert_eq!(status_label(status), "signal(9)");
    }

    #[test]
    fn terminate_honors_sigterm_within_grace() {
        let (mut child, _in, _out) = sh("exec sleep 30");
        let status = child.terminate(Duration::from_secs(5)).unwrap();
        assert_eq!(status_label(status), "signal(15)");
    }

    #[test]
    fn drop_reaps_a_running_child() {
        let pid = {
            let (child, _in, _out) = sh("exec sleep 30");
            child.pid()
        };
        // after Drop the pid must be gone (or at worst a freshly reused
        // pid): kill(pid, 0) probing via /proc avoids signal side effects
        let alive = std::fs::read_to_string(format!("/proc/{pid}/stat"))
            .map(|s| !s.contains(") Z "))
            .unwrap_or(false);
        assert!(!alive, "dropped child must be killed and reaped");
    }
}
