//! Hostile-IPC property tests for the supervision layer.
//!
//! The framing parser faces a pipe its peer may fill with anything: raw
//! garbage, oversized length claims, frames cut mid-payload, valid JSON
//! that violates the message schema. Every one of those must surface as
//! a typed [`FrameError`] — never a panic, never an unbounded
//! allocation. And whatever a hostile child does, the supervisor must
//! come back with the child **reaped**: no zombies, no leaked processes.

use std::io::Cursor;

use harp_super::{
    encode_frame, supervise, ChildMsg, FrameError, FrameReader, Rung, SupervisorConfig,
    MAX_FRAME_BYTES,
};
use proptest::prelude::*;
use serde_json::Value;

fn read_all(bytes: &[u8]) -> Vec<Result<Option<Value>, FrameError>> {
    let mut frames = FrameReader::new(Cursor::new(bytes.to_vec()));
    let mut out = Vec::new();
    loop {
        match frames.read_frame() {
            Ok(Some(v)) => out.push(Ok(Some(v))),
            done @ Ok(None) => {
                out.push(done);
                return out;
            }
            err @ Err(_) => {
                out.push(err);
                return out;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes never panic the frame reader; the stream always
    /// ends in clean EOF or exactly one typed error.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec((0u32..256).prop_map(|b| b as u8), 0..400),
    ) {
        let results = read_all(&bytes);
        let last = results.last().expect("read_all always yields");
        prop_assert!(
            matches!(last, Ok(None) | Err(_)),
            "stream must end in EOF or typed error"
        );
    }

    /// Oversized length claims are rejected *before* any allocation —
    /// as an oversize error (parsable length over the cap) or a bad
    /// length line (too many digits) — never by attempting the read.
    #[test]
    fn oversized_length_prefixes_reject_without_allocating(
        extra in 1u64..=u64::from(u32::MAX),
    ) {
        let len = MAX_FRAME_BYTES as u64 + extra;
        let bytes = format!("{len}\n").into_bytes();
        let mut frames = FrameReader::new(Cursor::new(bytes));
        match frames.read_frame() {
            Err(FrameError::Oversize { len: l, max }) => {
                prop_assert_eq!(l, len as usize);
                prop_assert_eq!(max, MAX_FRAME_BYTES);
            }
            Err(FrameError::BadLengthLine(_)) => {} // > 10 digits
            other => prop_assert!(false, "expected typed rejection, got {other:?}"),
        }
    }

    /// A valid frame truncated at any byte boundary is a typed error
    /// (truncated frame, missing terminator, or bad length line) — and
    /// never parses as a complete frame.
    #[test]
    fn truncated_frames_are_typed_errors(cut_frac in 0.0f64..1.0) {
        let full = encode_frame(&serde_json::json!({
            "type": "progress", "epoch": 3.0, "loss": 0.25, "val": 1.5,
        }));
        let cut = ((full.len() - 1) as f64 * cut_frac) as usize;
        let mut frames = FrameReader::new(Cursor::new(full[..cut].to_vec()));
        match frames.read_frame() {
            Ok(None) => prop_assert_eq!(cut, 0, "only the empty prefix is clean EOF"),
            Err(
                FrameError::TruncatedFrame { .. }
                | FrameError::BadLengthLine(_)
                | FrameError::MissingTerminator(_),
            ) => {}
            other => prop_assert!(false, "cut at {cut}: unexpected {other:?}"),
        }
    }

    /// Schema-hostile but well-framed JSON decodes to a typed
    /// `BadMessage`, never a panic or a silently-defaulted message.
    #[test]
    fn hostile_schemas_are_bad_messages(
        ty_chars in proptest::collection::vec(97u32..123, 0..8),
        epoch in prop_oneof![Just(-1.0f64), Just(0.5), Just(f64::NAN), Just(1e300)],
    ) {
        let ty: String = ty_chars
            .iter()
            .map(|&c| char::from(c as u8)) // lint: allow(as-cast) — 97..123 fits u8
            .collect();
        let v = serde_json::json!({"type": ty.clone(), "epoch": epoch});
        let framed = encode_frame(&v);
        let results = read_all(&framed);
        if let Some(Ok(Some(frame))) = results.first() {
            if let Ok(msg) = ChildMsg::from_value(frame) {
                // the only decodable combination is a real heartbeat
                prop_assert!(matches!(msg, ChildMsg::Heartbeat { .. }));
                prop_assert_eq!(ty.as_str(), "heartbeat");
                prop_assert!(epoch >= 0.0 && epoch.fract() == 0.0);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Supervisor vs hostile /bin/sh children: whatever the child does, the
// supervisor returns with the child reaped and a deterministic outcome.
// ---------------------------------------------------------------------

#[cfg(unix)]
mod hostile_children {
    use super::*;
    use std::sync::{Mutex, MutexGuard};
    use std::time::Duration;

    /// The `/proc` children scan sees every child of the test *process*,
    /// so these tests serialize on one lock — a parallel test's live
    /// child is not a leak.
    static CHILD_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        CHILD_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn sh_cfg(script: &str) -> SupervisorConfig {
        let mut cfg = SupervisorConfig::new("/bin/sh".into(), serde_json::json!({"job": "x"}));
        cfg.args = vec!["-c".to_string(), script.to_string()];
        cfg.restart_budget = 2;
        cfg.snapshot_budget = 1;
        cfg.backoff_base_ms = 1;
        cfg.backoff_max_ms = 2;
        cfg.startup_grace_ms = 2_000;
        cfg.heartbeat_ms = 2_000;
        cfg.term_grace_ms = 200;
        cfg
    }

    fn no_runaway_children() {
        // A reaped child leaves no entry under this process's children.
        let mut kids = String::new();
        for tid in std::fs::read_dir("/proc/self/task").expect("proc") {
            let p = tid.expect("tid").path().join("children");
            kids.push_str(&std::fs::read_to_string(p).unwrap_or_default());
        }
        // the cargo test harness itself spawns nothing long-lived here
        assert!(
            kids.split_whitespace().next().is_none(),
            "leaked child pids: {kids}"
        );
    }

    #[test]
    fn garbage_spewing_child_is_ipc_error_and_reaped() {
        let _serial = lock();
        let cfg = sh_cfg("echo 'not a frame at all'; exit 0");
        let mut rungs = Vec::new();
        let out = supervise(&cfg, &mut |_, rung| rungs.push(rung));
        assert!(out.dead, "garbage child must exhaust the budget");
        assert!(out.shipped.is_none());
        assert_eq!(out.restarts, 2);
        assert!(
            out.ipc_errors >= 1,
            "garbled frames must count as protocol errors: {:?}",
            out.log
        );
        // escalation ladder: first restart from snapshot, then params-only
        assert_eq!(rungs, vec![Rung::FromSnapshot, Rung::ParamsOnly]);
        no_runaway_children();
    }

    #[test]
    fn instantly_dying_child_reports_exit_status_deterministically() {
        let _serial = lock();
        let cfg = sh_cfg("exit 3");
        let out = supervise(&cfg, &mut |_, _| {});
        assert!(out.dead);
        assert_eq!(out.restarts, 2);
        assert!(
            out.detail.contains("exit(3)"),
            "failure reason must carry the exit status: {}",
            out.detail
        );
        no_runaway_children();
    }

    #[test]
    fn hung_child_trips_watchdog_and_is_killed() {
        let _serial = lock();
        let mut cfg = sh_cfg("exec sleep 60");
        cfg.restart_budget = 1;
        cfg.snapshot_budget = 1;
        cfg.startup_grace_ms = 150; // the hello never comes
        let t0 = std::time::Instant::now();
        let out = supervise(&cfg, &mut |_, _| {});
        assert!(out.dead);
        assert_eq!(out.heartbeat_misses, 2, "both attempts must time out");
        assert!(
            out.detail.contains("watchdog"),
            "watchdog reason expected: {}",
            out.detail
        );
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "sleep-60 child must be SIGKILLed, not waited for"
        );
        no_runaway_children();
    }

    #[test]
    fn mid_frame_eof_child_is_typed_error_not_panic() {
        let _serial = lock();
        // claims 100 bytes, delivers 9, then closes the pipe
        let cfg = sh_cfg("printf '100\\nfragment!'");
        let out = supervise(&cfg, &mut |_, _| {});
        assert!(out.dead);
        assert!(
            out.log.iter().any(|l| l.contains("mid-frame")),
            "truncation must be named in the log: {:?}",
            out.log
        );
        no_runaway_children();
    }

    #[test]
    fn scripted_ship_sequence_is_accepted() {
        let _serial = lock();
        // A fake trainer that plays the happy path from a byte recording:
        // hello, ship, done. (It never reads config — the supervisor
        // tolerates a child that front-runs the handshake.)
        let dir = std::env::temp_dir().join(format!("harp_super_script_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(
            &ChildMsg::Hello {
                pid: 1,
                proto: harp_super::PROTO_VERSION,
            }
            .to_value(),
        ));
        bytes.extend_from_slice(&encode_frame(
            &ChildMsg::Ship {
                generation: 7,
                path: "/tmp/params.json".to_string(),
            }
            .to_value(),
        ));
        bytes.extend_from_slice(&encode_frame(&ChildMsg::Done.to_value()));
        let script_file = dir.join("frames.bin");
        std::fs::write(&script_file, &bytes).expect("write frames");

        let cfg = sh_cfg(&format!("cat {}; sleep 0.2", script_file.display()));
        let out = supervise(&cfg, &mut |_, _| {});
        assert_eq!(
            out.shipped,
            Some((7, "/tmp/params.json".to_string())),
            "log: {:?}",
            out.log
        );
        assert!(!out.dead);
        no_runaway_children();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
