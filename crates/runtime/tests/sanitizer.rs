//! Seeded-violation tests: prove the determinism sanitizer actually
//! fires through the real runtime entry points, not just in unit tests of
//! the checker. Compiled only with `--features sanitizer`.
#![cfg(feature = "sanitizer")]

use harp_runtime::sanitizer::{self, Seed, ViolationKind};
use harp_runtime::Runtime;

#[test]
fn clean_sections_raise_no_violations() {
    let rt = Runtime::new(4);
    let items: Vec<u64> = (0..37).collect();
    let (sum, violations) = sanitizer::capture(|| {
        let partials = rt.par_chunks(&items, |_, _, chunk| chunk.iter().sum::<u64>());
        let mut data = vec![0.0f32; 13 * 5];
        rt.par_row_blocks(&mut data, 5, |first_row, block| {
            for (r, row) in block.chunks_exact_mut(5).enumerate() {
                row.fill((first_row + r) as f32);
            }
        });
        Runtime::tree_reduce(partials, |a, b| a + b)
    });
    assert_eq!(sum, Some(items.iter().sum()));
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn seeded_partition_overlap_is_a_structured_violation() {
    let rt = Runtime::new(4);
    let items: Vec<u64> = (0..32).collect();
    sanitizer::seed(Seed::OverlapPartitions);
    let (sums, violations) =
        sanitizer::capture(|| rt.par_chunks(&items, |_, _, chunk| chunk.iter().sum::<u64>()));
    // The corruption is shadow-only: real work is untouched.
    assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
    assert_eq!(violations.len(), 1, "{violations:?}");
    let v = &violations[0];
    assert_eq!(v.section, "par_chunks");
    match &v.kind {
        ViolationKind::PartitionOverlap { a, b, overlap } => {
            assert_eq!((*a, *b), (0, 1), "blocks 0 and 1 overlap");
            assert_eq!(*overlap, 8..9, "32 items over 4 workers: block 0 ends at 8");
        }
        other => panic!("expected PartitionOverlap, got {other:?}"),
    }
    // The rendered report names the offending workers.
    let rendered = v.to_string();
    assert!(rendered.contains("par_chunks"), "{rendered}");
    assert!(rendered.contains("blocks 0 and 1"), "{rendered}");
}

#[test]
fn seeded_merge_permutation_is_a_structured_violation() {
    let rt = Runtime::new(4);
    let items: Vec<u64> = (0..32).collect();
    let partials = rt.par_chunks(&items, |_, _, chunk| chunk.iter().sum::<u64>());
    sanitizer::seed(Seed::PermuteMergeOrder);
    let (total, violations) = sanitizer::capture(|| Runtime::tree_reduce(partials, |a, b| a + b));
    assert_eq!(total, Some(items.iter().sum()), "real merge is untouched");
    assert_eq!(violations.len(), 1, "{violations:?}");
    let v = &violations[0];
    assert_eq!(v.section, "tree_reduce");
    match &v.kind {
        ViolationKind::MergeOrder { left, right } => {
            assert_eq!((left.clone(), right.clone()), (1..2, 0..1));
        }
        other => panic!("expected MergeOrder, got {other:?}"),
    }
}

#[test]
fn par_row_blocks_audits_its_partition() {
    let rt = Runtime::new(3);
    sanitizer::seed(Seed::OverlapPartitions);
    let (_, violations) = sanitizer::capture(|| {
        let mut data = vec![0.0f32; 12 * 4];
        rt.par_row_blocks(&mut data, 4, |_, block| block.fill(1.0));
        data
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].section, "par_row_blocks");
    assert!(matches!(
        violations[0].kind,
        ViolationKind::PartitionOverlap { .. }
    ));
}

#[test]
fn uncaptured_violation_panics_loudly() {
    let caught = std::panic::catch_unwind(|| {
        sanitizer::seed(Seed::PermuteMergeOrder);
        Runtime::tree_reduce(vec![1.0f32, 2.0, 3.0, 4.0], |a, b| a + b)
    });
    let payload = caught.expect_err("seeded violation outside capture must panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("tree_reduce"),
        "panic names the section: {msg}"
    );
    assert!(msg.contains("fixed left-to-right order"), "{msg}");
}
