//! # harp-runtime
//!
//! A small deterministic data-parallel executor for CPU-bound batch work,
//! built on [`std::thread::scope`] (no external dependencies, no `unsafe`).
//!
//! HARP's training protocol is per-snapshot: every batch element builds its
//! own tape, runs forward/backward, and only the final gradient merge
//! touches shared state. The same shape recurs in evaluation sweeps and in
//! row-partitioned dense kernels. This crate provides the one primitive all
//! of those need: *split a known amount of work into contiguous blocks, run
//! the blocks on a fixed number of workers, and recombine the results in a
//! fixed order*.
//!
//! ## Determinism contract
//!
//! * [`Runtime::par_map`] / [`Runtime::par_chunks`] return results in item
//!   (respectively chunk) order — never in thread-completion order.
//! * Work is partitioned into contiguous blocks by [`partition`], a pure
//!   function of `(items, workers)`. The same input and worker count always
//!   produce the same per-worker assignment.
//! * [`Runtime::tree_reduce`] combines per-worker partials pairwise in a
//!   fixed left-to-right tree on the calling thread, so floating-point
//!   merges are bitwise-reproducible for a given worker count.
//!
//! Together these make every parallel result a pure function of
//! `(input, worker count)`: re-running with the same `HARP_THREADS` is
//! bitwise-reproducible, and changing the worker count only reorders
//! floating-point reductions (bounded drift, verified in tests downstream).
//!
//! ## Sizing `HARP_THREADS`
//!
//! [`Runtime::global`] reads the `HARP_THREADS` environment variable once
//! (falling back to [`std::thread::available_parallelism`]). Physical cores
//! are the right ceiling for the dense-float workloads here; oversubscribing
//! only adds scheduling noise. Set `HARP_THREADS=1` to force every consumer
//! back to the serial path.
//!
//! ## Determinism sanitizer (`sanitizer` feature)
//!
//! Building with `--features sanitizer` compiles the [`sanitizer`] shadow
//! checker into every parallel section: partition audits (overlap/gap),
//! dispatched-block claim checks, and `tree_reduce` merge-order tracking.
//! A violation panics with a structured report naming the section and the
//! offending worker/blocks (or is collected under
//! [`sanitizer::capture`]). Without the feature none of this code exists,
//! so the production runtime pays nothing. `HARP_SANITIZER=off` disables
//! the checks at runtime when compiled in.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use harp_obs::{Counter, FieldValue, Histogram};

#[cfg(feature = "sanitizer")]
pub mod sanitizer;

/// Parallel sections entered (calls that actually fanned out to >1 block).
static PAR_CALLS: Counter = Counter::new("runtime.par_calls");
/// Sections that stayed on the calling thread (≤1 block).
static SERIAL_CALLS: Counter = Counter::new("runtime.serial_calls");
/// Items (or rows) dispatched through parallel sections.
static PAR_ITEMS: Counter = Counter::new("runtime.par_items");
/// Per-worker busy time inside parallel sections, ns (sums across
/// workers, so `busy_ns / wall_ns` of a section ≈ pool utilization).
static WORKER_BUSY_NS: Counter = Counter::new("runtime.worker_busy_ns");
/// Distribution of per-worker block durations in parallel sections, ns.
static WORKER_BLOCK_NS: Histogram = Histogram::new("runtime.worker_block_ns");
/// Worker panics contained at the pool boundary by
/// [`Runtime::try_par_chunks`].
static WORKER_PANICS: Counter = Counter::new("runtime.worker_panics");

/// Time `f`, crediting its duration to the pool-utilization metrics.
/// Inlines to a plain call when the obs sink is off.
#[inline]
fn timed_block<R>(f: impl FnOnce() -> R) -> R {
    if !harp_obs::enabled() {
        return f();
    }
    let t0 = Instant::now();
    let r = f();
    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    WORKER_BUSY_NS.add(ns);
    WORKER_BLOCK_NS.record(ns);
    r
}

/// Contiguous block boundaries `(start, end)` splitting `n` items across
/// `workers` blocks as evenly as possible (sizes differ by at most one,
/// larger blocks first). Fewer than `workers` blocks are returned when
/// there are fewer items than workers; zero-size blocks are never returned
/// (except none at all for `n == 0`).
pub fn partition(n: usize, workers: usize) -> Vec<(usize, usize)> {
    let w = workers.max(1).min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    let base = n / w;
    let rem = n % w;
    let mut out = Vec::with_capacity(w);
    let mut start = 0;
    for b in 0..w {
        let len = base + usize::from(b < rem);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// [`partition`] with block boundaries aligned to multiples of `grain`
/// items (except the final boundary, which is `n`). Used by row-strip
/// kernels that process `grain` rows per register-blocked step: aligned
/// blocks mean only the last block of the whole matrix — not one block per
/// worker — can end in a partial strip. `grain == 1` is exactly
/// [`partition`]. Determinism is unaffected: blocks stay contiguous,
/// disjoint, and a pure function of `(n, workers, grain)`.
pub fn partition_grained(n: usize, workers: usize, grain: usize) -> Vec<(usize, usize)> {
    let g = grain.max(1);
    if g == 1 {
        return partition(n, workers);
    }
    partition(n.div_ceil(g), workers)
        .into_iter()
        .map(|(lo, hi)| (lo * g, (hi * g).min(n)))
        .collect()
}

/// A deterministic scoped-thread-pool executor: a worker count plus the
/// partitioning policy described in the crate docs. Cheap to copy; threads
/// are scoped per call, not persistent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Runtime {
    workers: usize,
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::global()
    }
}

/// Worker count resolved once per process from `HARP_THREADS` /
/// available parallelism.
static GLOBAL_WORKERS: OnceLock<usize> = OnceLock::new();

/// Upper bound accepted from `HARP_THREADS`. Every parallel section spawns
/// scoped threads, so a typo'd huge value (an appended zero, a pasted
/// timestamp) would fork-bomb the process instead of helping; beyond this
/// bound the request is rejected and the fallback applies.
pub const MAX_WORKERS: usize = 512;

/// Outcome of validating a requested worker count (see [`resolve_workers`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerResolution {
    /// The worker count to use.
    pub workers: usize,
    /// When the request was invalid: why it was rejected (`workers` then
    /// holds the fallback).
    pub rejected: Option<String>,
}

/// Validate a raw `HARP_THREADS` value against the fallback `available`
/// (the host's available parallelism). Accepts integers in
/// `1..=`[`MAX_WORKERS`]; anything else — zero, non-numeric, overlarge —
/// resolves to `available` with a rejection reason. Pure, so every
/// rejection class is unit-testable without touching process environment.
pub fn resolve_workers(request: Option<&str>, available: usize) -> WorkerResolution {
    let fallback = available.max(1);
    let Some(raw) = request else {
        return WorkerResolution {
            workers: fallback,
            rejected: None,
        };
    };
    match raw.trim().parse::<usize>() {
        Ok(0) => WorkerResolution {
            workers: fallback,
            rejected: Some(format!("HARP_THREADS={raw:?} is zero (need >= 1)")),
        },
        Ok(n) if n > MAX_WORKERS => WorkerResolution {
            workers: fallback,
            rejected: Some(format!(
                "HARP_THREADS={raw:?} exceeds the {MAX_WORKERS}-worker bound"
            )),
        },
        Ok(n) => WorkerResolution {
            workers: n,
            rejected: None,
        },
        Err(_) => WorkerResolution {
            workers: fallback,
            rejected: Some(format!("HARP_THREADS={raw:?} is not an integer")),
        },
    }
}

/// Emit the `runtime.workers_fallback` warning for a rejected resolution,
/// at most once per process. Deduplication lives here (not in the
/// `OnceLock` init above) so that any future resolution path — re-reading
/// config, per-subsystem runtimes — inherits it instead of re-spamming
/// stderr. Returns whether this call actually warned.
fn warn_workers_fallback(res: &WorkerResolution) -> bool {
    static WARNED: AtomicBool = AtomicBool::new(false);
    let Some(reason) = &res.rejected else {
        return false;
    };
    if WARNED.swap(true, Ordering::Relaxed) {
        return false;
    }
    harp_obs::warn_always(
        "runtime.workers_fallback",
        &[
            ("reason", FieldValue::Str(reason.clone())),
            ("fallback_workers", FieldValue::U64(res.workers as u64)),
        ],
    );
    true
}

impl Runtime {
    /// A runtime with exactly `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Runtime {
            workers: workers.max(1),
        }
    }

    /// The single-worker runtime: every `par_*` call runs inline on the
    /// calling thread.
    pub fn serial() -> Self {
        Runtime::new(1)
    }

    /// The process-wide runtime: worker count from the `HARP_THREADS`
    /// environment variable if set to an integer in `1..=`[`MAX_WORKERS`],
    /// otherwise [`std::thread::available_parallelism`]. An invalid value
    /// is rejected loudly — a `runtime.workers_fallback` obs warning (on
    /// stderr even with the sink off) names the value and the fallback
    /// worker count, at most once per process. Resolved once; later
    /// changes to the environment do not affect it.
    pub fn global() -> Self {
        let workers = *GLOBAL_WORKERS.get_or_init(|| {
            let raw = std::env::var("HARP_THREADS").ok();
            let available = std::thread::available_parallelism().map_or(1, |n| n.get());
            let res = resolve_workers(raw.as_deref(), available);
            warn_workers_fallback(&res);
            res.workers
        });
        Runtime::new(workers)
    }

    /// Number of workers this runtime fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Hand the pool off to `parts` independent owners: returns one
    /// runtime per part, distributing this runtime's workers as evenly as
    /// possible (earlier parts get the remainder; every part gets at
    /// least one worker, so oversubscription only happens when
    /// `parts > workers`). Used by the serving fleet to give each shard
    /// its own slice of the machine instead of letting N shards each fan
    /// out to the full pool.
    pub fn split(&self, parts: usize) -> Vec<Runtime> {
        let parts = parts.max(1);
        let base = self.workers / parts;
        let rem = self.workers % parts;
        (0..parts)
            .map(|i| Runtime::new(base + usize::from(i < rem)))
            .collect()
    }

    /// Map `f` over `items` in parallel, returning results in item order.
    ///
    /// `f` receives the item's index and a reference to it. Items are
    /// partitioned into at most [`Runtime::workers`] contiguous blocks; the
    /// calling thread executes the first block while scoped workers execute
    /// the rest. With one worker (or one item) this is exactly
    /// `items.iter().enumerate().map(..).collect()`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let map_block = |(lo, hi): (usize, usize)| -> Vec<R> {
            items[lo..hi]
                .iter()
                .enumerate()
                .map(|(j, t)| f(lo + j, t))
                .collect()
        };
        let blocks = partition(items.len(), self.workers);
        #[cfg(feature = "sanitizer")]
        sanitizer::audit_blocks("par_map", &blocks, items.len());
        if blocks.len() <= 1 {
            SERIAL_CALLS.add(1);
            return blocks.into_iter().flat_map(map_block).collect();
        }
        PAR_CALLS.add(1);
        PAR_ITEMS.add(items.len() as u64);
        let mut per_block: Vec<Vec<R>> = Vec::with_capacity(blocks.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = blocks[1..]
                .iter()
                .map(|&b| s.spawn(move || timed_block(|| map_block(b))))
                .collect();
            per_block.push(timed_block(|| map_block(blocks[0])));
            for h in handles {
                per_block.push(join_propagating(h));
            }
        });
        per_block.into_iter().flatten().collect()
    }

    /// Run `f` once per contiguous chunk of `items` (one chunk per worker),
    /// returning the per-chunk results in chunk order.
    ///
    /// `f` receives `(chunk_index, offset_of_first_item, chunk)`. This is
    /// the right primitive when each worker should amortize per-worker
    /// state (e.g. a private gradient accumulation buffer) across its whole
    /// block instead of paying for it per item.
    pub fn par_chunks<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, usize, &[T]) -> R + Sync,
    {
        let blocks = partition(items.len(), self.workers);
        #[cfg(feature = "sanitizer")]
        sanitizer::audit_blocks("par_chunks", &blocks, items.len());
        if blocks.len() <= 1 {
            SERIAL_CALLS.add(1);
            return blocks
                .into_iter()
                .enumerate()
                .map(|(ci, (lo, hi))| f(ci, lo, &items[lo..hi]))
                .collect();
        }
        PAR_CALLS.add(1);
        PAR_ITEMS.add(items.len() as u64);
        let fref = &f;
        let mut per_chunk: Vec<R> = Vec::with_capacity(blocks.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = blocks[1..]
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| {
                    s.spawn(move || timed_block(|| fref(i + 1, lo, &items[lo..hi])))
                })
                .collect();
            let (lo0, hi0) = blocks[0];
            per_chunk.push(timed_block(|| f(0, lo0, &items[lo0..hi0])));
            for h in handles {
                per_chunk.push(join_propagating(h));
            }
        });
        per_chunk
    }

    /// Split a mutable buffer of `rows * row_len` elements into contiguous
    /// row blocks (one per worker) and run `f` on each block in parallel.
    ///
    /// `f` receives `(first_row_index, block)` where `block` covers whole
    /// rows. Blocks are disjoint, so no synchronization is needed; each
    /// output row is written by exactly one worker. This is the primitive
    /// behind the row-partitioned matmul kernels: per-row arithmetic order
    /// is unchanged by the split, so serial and parallel results are
    /// bitwise identical.
    pub fn par_row_blocks<E, F>(&self, data: &mut [E], row_len: usize, f: F)
    where
        E: Send,
        F: Fn(usize, &mut [E]) + Sync,
    {
        self.par_row_blocks_grained(data, row_len, 1, f);
    }

    /// [`Runtime::par_row_blocks`] with worker boundaries aligned to
    /// multiples of `grain` rows (see [`partition_grained`]). The matmul
    /// microkernels use this so register-blocked strips of `grain` output
    /// rows are never split across two workers; per-row arithmetic order is
    /// still unchanged by the split, so serial and parallel results remain
    /// bitwise identical.
    pub fn par_row_blocks_grained<E, F>(&self, data: &mut [E], row_len: usize, grain: usize, f: F)
    where
        E: Send,
        F: Fn(usize, &mut [E]) + Sync,
    {
        assert!(row_len > 0, "par_row_blocks: zero row length");
        assert_eq!(
            data.len() % row_len,
            0,
            "par_row_blocks: buffer is not whole rows"
        );
        let rows = data.len() / row_len;
        let blocks = partition_grained(rows, self.workers, grain);
        #[cfg(feature = "sanitizer")]
        sanitizer::audit_blocks("par_row_blocks", &blocks, rows);
        if blocks.len() <= 1 {
            SERIAL_CALLS.add(1);
            if !data.is_empty() {
                f(0, data);
            }
            return;
        }
        PAR_CALLS.add(1);
        PAR_ITEMS.add(rows as u64);
        let fref = &f;
        std::thread::scope(|s| {
            let mut rest = data;
            let mut handles = Vec::with_capacity(blocks.len() - 1);
            // Peel blocks back-to-front so block 0 stays on the caller.
            let mut split = Vec::with_capacity(blocks.len() - 1);
            for (_bi, &(lo, _hi)) in blocks[1..].iter().enumerate().rev() {
                let (head, tail) = rest.split_at_mut(lo * row_len);
                #[cfg(feature = "sanitizer")]
                sanitizer::check_claim("par_row_blocks", _bi + 1, (_hi - lo) * row_len, tail.len());
                split.push((lo, tail));
                rest = head;
            }
            for (lo, block) in split.into_iter().rev() {
                handles.push(s.spawn(move || timed_block(|| fref(lo, block))));
            }
            #[cfg(feature = "sanitizer")]
            sanitizer::check_claim(
                "par_row_blocks",
                0,
                (blocks[0].1 - blocks[0].0) * row_len,
                rest.len(),
            );
            timed_block(|| f(0, rest));
            for h in handles {
                join_propagating(h);
            }
        });
    }

    /// Like [`Runtime::par_chunks`], but a panic inside `f` is **contained
    /// at the pool boundary** instead of unwinding through the caller: the
    /// first panicking chunk (in chunk order, deterministically) is
    /// reported as a [`WorkerPanic`] carrying the worker index and the
    /// rendered panic message. Other chunks still run to completion, so
    /// shared state the caller owns (parameter stores, checkpoints) stays
    /// usable for rollback.
    ///
    /// This is the fault-tolerant entry point the training loop uses: one
    /// poisoned batch element must surface as a structured per-epoch error,
    /// not abort the process.
    pub fn try_par_chunks<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, WorkerPanic>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, usize, &[T]) -> R + Sync,
    {
        let fref = &f;
        let run = move |ci: usize, (lo, hi): (usize, usize)| -> Result<R, WorkerPanic> {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                timed_block(|| fref(ci, lo, &items[lo..hi]))
            }))
            .map_err(|payload| {
                WORKER_PANICS.add(1);
                let wp = WorkerPanic {
                    worker: ci,
                    message: panic_message(payload.as_ref()),
                };
                harp_obs::event("runtime.worker_panic")
                    .field("worker", ci as u64)
                    .field_with("message", || wp.message.clone().into())
                    .emit();
                wp
            })
        };
        let blocks = partition(items.len(), self.workers);
        #[cfg(feature = "sanitizer")]
        sanitizer::audit_blocks("try_par_chunks", &blocks, items.len());
        if blocks.len() <= 1 {
            SERIAL_CALLS.add(1);
            return blocks
                .into_iter()
                .enumerate()
                .map(|(ci, b)| run(ci, b))
                .collect();
        }
        PAR_CALLS.add(1);
        PAR_ITEMS.add(items.len() as u64);
        let mut per_chunk: Vec<Result<R, WorkerPanic>> = Vec::with_capacity(blocks.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = blocks[1..]
                .iter()
                .enumerate()
                .map(|(i, &b)| s.spawn(move || run(i + 1, b)))
                .collect();
            per_chunk.push(run(0, blocks[0]));
            for h in handles {
                per_chunk.push(join_propagating(h));
            }
        });
        per_chunk.into_iter().collect()
    }

    /// Combine `partials` pairwise in a fixed left-to-right tree:
    /// `(p0⊕p1) ⊕ (p2⊕p3) ⊕ ...`, repeated until one value remains.
    ///
    /// Runs on the calling thread; the combination order is a pure function
    /// of `partials.len()`, which is what makes floating-point merges of
    /// per-worker results bitwise-reproducible for a given worker count.
    /// Returns `None` for an empty input.
    pub fn tree_reduce<R>(mut partials: Vec<R>, mut combine: impl FnMut(R, R) -> R) -> Option<R> {
        if partials.is_empty() {
            return None;
        }
        // With the sanitizer on, each slot carries the range of original
        // partial indices it covers; every merge must join adjacent
        // in-order ranges or it is an out-of-fixed-order float merge.
        #[cfg(feature = "sanitizer")]
        let mut labels = sanitizer::merge_labels(partials.len());
        while partials.len() > 1 {
            let mut next = Vec::with_capacity(partials.len().div_ceil(2));
            #[cfg(feature = "sanitizer")]
            let mut next_labels = Vec::with_capacity(labels.len().div_ceil(2));
            #[cfg(feature = "sanitizer")]
            let mut label_it = labels.into_iter();
            let mut it = partials.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        next.push(combine(a, b));
                        #[cfg(feature = "sanitizer")]
                        if let (Some(la), Some(lb)) = (label_it.next(), label_it.next()) {
                            next_labels.push(sanitizer::check_merge(la, lb));
                        }
                    }
                    None => {
                        next.push(a);
                        #[cfg(feature = "sanitizer")]
                        if let Some(la) = label_it.next() {
                            next_labels.push(la);
                        }
                    }
                }
            }
            partials = next;
            #[cfg(feature = "sanitizer")]
            {
                labels = next_labels;
            }
        }
        partials.pop()
    }
}

/// A panic captured from one pool worker by [`Runtime::try_par_chunks`].
///
/// The panic did not cross the pool boundary: every other chunk completed
/// (or reported its own panic), scoped threads were joined, and whatever
/// state the caller owns is intact. `worker` is the chunk index of the
/// first panicking worker in chunk order, so the same failing input always
/// names the same worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Chunk index of the worker whose closure panicked.
    pub worker: usize,
    /// The panic payload rendered as text (`&str`/`String` payloads
    /// verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool worker {} panicked: {}", self.worker, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Render a panic payload as text for [`WorkerPanic::message`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Join a scoped worker, re-raising its panic on the calling thread so
/// parallel sections fail exactly like their serial equivalents.
fn join_propagating<'a, R>(h: std::thread::ScopedJoinHandle<'a, R>) -> R {
    match h.join() {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_contiguously() {
        for n in 0..50 {
            for w in 1..10 {
                let blocks = partition(n, w);
                let mut next = 0;
                for &(lo, hi) in &blocks {
                    assert_eq!(lo, next, "n={n} w={w}");
                    assert!(hi > lo, "empty block for n={n} w={w}");
                    next = hi;
                }
                assert_eq!(next, n, "n={n} w={w}");
                if n > 0 {
                    assert_eq!(blocks.len(), w.min(n));
                    let sizes: Vec<usize> = blocks.iter().map(|(l, h)| h - l).collect();
                    let (mn, mx) = (sizes.iter().min(), sizes.iter().max());
                    assert!(mx.and_then(|m| mn.map(|n| m - n)) <= Some(1));
                }
            }
        }
    }

    #[test]
    fn partition_grained_aligns_and_covers() {
        for n in 0..80 {
            for w in 1..8 {
                for g in 1..6 {
                    let blocks = partition_grained(n, w, g);
                    let mut next = 0;
                    for (bi, &(lo, hi)) in blocks.iter().enumerate() {
                        assert_eq!(lo, next, "n={n} w={w} g={g}");
                        assert!(hi > lo, "empty block for n={n} w={w} g={g}");
                        // every boundary except the last is grain-aligned
                        if bi + 1 < blocks.len() {
                            assert_eq!(hi % g, 0, "n={n} w={w} g={g}");
                        }
                        next = hi;
                    }
                    assert_eq!(next, n, "n={n} w={w} g={g}");
                }
            }
        }
        assert_eq!(partition_grained(10, 3, 4), vec![(0, 4), (4, 8), (8, 10)]);
    }

    #[test]
    fn par_row_blocks_grained_writes_every_row_once() {
        let rows = 27;
        let row_len = 3;
        for w in [1, 2, 3, 4, 32] {
            for g in [1, 4, 8] {
                let rt = Runtime::new(w);
                let mut data = vec![0.0f32; rows * row_len];
                rt.par_row_blocks_grained(&mut data, row_len, g, |first_row, block| {
                    for (r, row) in block.chunks_exact_mut(row_len).enumerate() {
                        for v in row.iter_mut() {
                            *v += (first_row + r) as f32;
                        }
                    }
                });
                for r in 0..rows {
                    for j in 0..row_len {
                        assert_eq!(data[r * row_len + j], r as f32, "w={w} g={g} row {r}");
                    }
                }
            }
        }
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..103).collect();
        for w in [1, 2, 3, 4, 7, 128] {
            let rt = Runtime::new(w);
            let out = rt.par_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            let expect: Vec<usize> = items.iter().map(|x| x * 2).collect();
            assert_eq!(out, expect, "workers={w}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let rt = Runtime::new(4);
        let empty: Vec<u32> = vec![];
        assert_eq!(rt.par_map(&empty, |_, &x| x), Vec::<u32>::new());
        assert_eq!(rt.par_map(&[9u32], |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn par_chunks_sees_every_item_once() {
        let items: Vec<u64> = (0..37).collect();
        for w in [1, 2, 4, 5] {
            let rt = Runtime::new(w);
            let partial = rt.par_chunks(&items, |ci, off, chunk| {
                assert_eq!(chunk[0], off as u64, "chunk {ci} offset");
                chunk.iter().sum::<u64>()
            });
            assert_eq!(partial.len(), w.min(items.len()));
            let total = Runtime::tree_reduce(partial, |a, b| a + b);
            assert_eq!(total, Some(items.iter().sum()));
        }
    }

    #[test]
    fn par_row_blocks_writes_every_row_once() {
        let rows = 13;
        let row_len = 5;
        for w in [1, 2, 3, 4, 32] {
            let rt = Runtime::new(w);
            let mut data = vec![0.0f32; rows * row_len];
            rt.par_row_blocks(&mut data, row_len, |first_row, block| {
                for (r, row) in block.chunks_exact_mut(row_len).enumerate() {
                    for v in row.iter_mut() {
                        *v += (first_row + r) as f32;
                    }
                }
            });
            for r in 0..rows {
                for j in 0..row_len {
                    assert_eq!(data[r * row_len + j], r as f32, "w={w} row {r}");
                }
            }
        }
    }

    #[test]
    fn tree_reduce_is_fixed_order() {
        // Non-associative combine: record the association structure.
        let parts: Vec<String> = (0..5).map(|i| i.to_string()).collect();
        let combined = Runtime::tree_reduce(parts, |a, b| format!("({a}{b})"));
        assert_eq!(combined.as_deref(), Some("(((01)(23))4)"));
        assert_eq!(Runtime::tree_reduce(Vec::<u32>::new(), |a, _| a), None);
        assert_eq!(Runtime::tree_reduce(vec![7], |a, b| a + b), Some(7));
    }

    #[test]
    fn resolve_workers_accepts_valid_requests() {
        for (raw, want) in [("1", 1), ("4", 4), (" 16 ", 16), ("512", MAX_WORKERS)] {
            let res = resolve_workers(Some(raw), 8);
            assert_eq!(res.workers, want, "raw={raw:?}");
            assert!(res.rejected.is_none(), "raw={raw:?}");
        }
        // unset: fallback to available parallelism, no warning
        let res = resolve_workers(None, 6);
        assert_eq!(res.workers, 6);
        assert!(res.rejected.is_none());
    }

    #[test]
    fn resolve_workers_rejects_zero() {
        let res = resolve_workers(Some("0"), 8);
        assert_eq!(res.workers, 8, "must fall back to available parallelism");
        let why = res.rejected.expect("zero is invalid");
        assert!(why.contains("HARP_THREADS"), "{why}");
        assert!(why.contains('0'), "{why}");
    }

    #[test]
    fn resolve_workers_rejects_non_numeric() {
        for raw in ["four", "", "4x", "-2", "1.5"] {
            let res = resolve_workers(Some(raw), 3);
            assert_eq!(res.workers, 3, "raw={raw:?}");
            let why = res.rejected.expect("non-numeric is invalid");
            assert!(why.contains("HARP_THREADS"), "raw={raw:?}: {why}");
        }
    }

    #[test]
    fn resolve_workers_rejects_overlarge() {
        for raw in ["513", "100000", "18446744073709551616"] {
            let res = resolve_workers(Some(raw), 4);
            assert_eq!(res.workers, 4, "raw={raw:?}");
            assert!(res.rejected.is_some(), "raw={raw:?} must be rejected");
        }
    }

    #[test]
    fn resolve_workers_fallback_is_at_least_one() {
        assert_eq!(resolve_workers(None, 0).workers, 1);
        assert_eq!(resolve_workers(Some("bogus"), 0).workers, 1);
    }

    #[test]
    fn workers_fallback_warns_once_per_process() {
        let ok = WorkerResolution {
            workers: 4,
            rejected: None,
        };
        let rejected = WorkerResolution {
            workers: 4,
            rejected: Some("HARP_THREADS=\"bogus\" is not an integer".into()),
        };
        assert!(
            !warn_workers_fallback(&ok),
            "a clean resolution never warns"
        );
        assert!(
            warn_workers_fallback(&rejected),
            "first rejection must warn"
        );
        assert!(
            !warn_workers_fallback(&rejected),
            "second rejection must be deduped by the process-wide flag"
        );
    }

    #[test]
    fn worker_count_clamps_to_one() {
        assert_eq!(Runtime::new(0).workers(), 1);
        assert_eq!(Runtime::serial().workers(), 1);
    }

    #[test]
    fn try_par_chunks_matches_par_chunks_when_nothing_panics() {
        let items: Vec<u64> = (0..37).collect();
        for w in [1, 2, 4, 5] {
            let rt = Runtime::new(w);
            let plain = rt.par_chunks(&items, |_, _, chunk| chunk.iter().sum::<u64>());
            let tried = rt
                .try_par_chunks(&items, |_, _, chunk| chunk.iter().sum::<u64>())
                .expect("no panics");
            assert_eq!(plain, tried, "workers={w}");
        }
    }

    #[test]
    fn try_par_chunks_contains_panic_as_structured_error() {
        let items: Vec<usize> = (0..16).collect();
        for w in [1, 4] {
            let rt = Runtime::new(w);
            let err = rt
                .try_par_chunks(&items, |ci, _, chunk| {
                    if chunk.contains(&11) {
                        // lint: allow(panic) — the contained panic under test
                        panic!("poisoned batch element 11");
                    }
                    ci
                })
                .expect_err("chunk holding item 11 must panic");
            assert!(
                err.message.contains("poisoned batch element 11"),
                "workers={w}: {err}"
            );
            // worker index is the chunk that owns item 11 (deterministic)
            let blocks = partition(items.len(), w);
            let want = blocks.iter().position(|&(lo, hi)| (lo..hi).contains(&11));
            assert_eq!(Some(err.worker), want, "workers={w}");
        }
    }

    #[test]
    fn try_par_chunks_reports_first_panicking_chunk() {
        let rt = Runtime::new(4);
        let items: Vec<usize> = (0..16).collect();
        let err = rt
            .try_par_chunks(&items, |ci, _, _| {
                if ci >= 2 {
                    // lint: allow(panic) — the contained panic under test
                    panic!("chunk {ci} down");
                }
                ci
            })
            .expect_err("two chunks panic");
        assert_eq!(err.worker, 2, "lowest panicking chunk wins");
        assert!(err.message.contains("chunk 2 down"), "{err}");
    }

    #[test]
    fn par_map_propagates_worker_panics() {
        let rt = Runtime::new(4);
        let items: Vec<usize> = (0..16).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.par_map(&items, |i, _| {
                assert!(i != 11, "boom at 11");
                i
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn split_distributes_workers_evenly_with_floor_one() {
        let counts = |rt: Runtime, parts| -> Vec<usize> {
            rt.split(parts).iter().map(Runtime::workers).collect()
        };
        assert_eq!(counts(Runtime::new(8), 4), vec![2, 2, 2, 2]);
        assert_eq!(counts(Runtime::new(7), 3), vec![3, 2, 2]);
        // more parts than workers: every part still gets one worker
        assert_eq!(counts(Runtime::new(2), 4), vec![1, 1, 1, 1]);
        assert_eq!(counts(Runtime::new(5), 1), vec![5]);
        assert_eq!(counts(Runtime::new(5), 0), vec![5], "0 parts clamps to 1");
    }
}
