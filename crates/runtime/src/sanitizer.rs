//! Shadow-access determinism sanitizer (compiled only with the
//! `sanitizer` cargo feature).
//!
//! The runtime's determinism contract rests on three mechanical facts:
//! partitions are disjoint, contiguous, and in order; every dispatched
//! block is exactly the rows its partition entry claims; and
//! [`Runtime::tree_reduce`](crate::Runtime::tree_reduce) merges partials
//! in the fixed left-to-right pairwise tree. All three are easy to break
//! silently in a refactor (an off-by-one in the peel arithmetic, a
//! completion-order merge "optimization") — the result is not a crash but
//! bitwise drift that only shows up as irreproducible training runs.
//!
//! With the feature enabled, every parallel section runs these shadow
//! checks on the calling thread, before any worker is spawned:
//!
//! * **Partition audit** (interval-overlap style): the block list must be
//!   non-empty-per-block, in order, pairwise disjoint, and must cover
//!   `0..n` without gaps ([`ViolationKind::PartitionOverlap`],
//!   [`ViolationKind::PartitionGap`]).
//! * **Claim check**: each block handed to a worker must span exactly the
//!   elements its partition entry claims
//!   ([`ViolationKind::BlockClaimMismatch`]) — this shadows the
//!   `split_at_mut` peel in `par_row_blocks`, the one place where a wrong
//!   length would mean cross-worker writes.
//! * **Merge-order check**: `tree_reduce` tracks a provenance label (the
//!   range of original partial indices covered) alongside every slot; any
//!   merge of non-adjacent or out-of-order ranges is an
//!   out-of-fixed-order float merge ([`ViolationKind::MergeOrder`]).
//!
//! A violation is a structured [`Violation`] naming the section and the
//! offending worker/blocks. Outside of [`capture`], raising one panics —
//! the sanitizer is meant to run under the existing property tests and
//! chaos drills, where a silent determinism break must fail loudly.
//! Inside [`capture`], violations are collected and returned instead, so
//! tests can assert on their structure.
//!
//! Checks never alter execution: the seeding hooks ([`seed`]) corrupt
//! only the *shadow* copy the checker sees, proving the checker fires
//! while the real work stays correct. Set `HARP_SANITIZER=off` to disable
//! the checks at runtime without recompiling (capture-mode checks stay
//! on, since a test asking for violations always wants them).

use std::cell::RefCell;
use std::ops::Range;
use std::sync::OnceLock;

use harp_obs::{Counter, FieldValue};

/// Violations raised (both panicking and captured).
static SANITIZER_VIOLATIONS: Counter = Counter::new("runtime.sanitizer_violations");

/// What went wrong, with the evidence attached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two blocks of one partition overlap: workers `a` and `b` would both
    /// own items in `overlap`.
    PartitionOverlap {
        /// Block index of the first overlapping worker.
        a: usize,
        /// Block index of the second overlapping worker.
        b: usize,
        /// The contested item range.
        overlap: Range<usize>,
    },
    /// The partition skips items or runs past the end: no worker (or a
    /// phantom worker) owns `gap`.
    PartitionGap {
        /// The uncovered (or over-covered) item range.
        gap: Range<usize>,
    },
    /// The block dispatched to `worker` does not span the elements its
    /// partition entry claims.
    BlockClaimMismatch {
        /// Block index of the mis-sized worker.
        worker: usize,
        /// Element count the partition entry claims.
        claimed: usize,
        /// Element count actually dispatched.
        actual: usize,
    },
    /// `tree_reduce` combined two partials out of the fixed left-to-right
    /// order: `left` and `right` are the original-partial index ranges of
    /// the merged slots (adjacent in-order ranges satisfy
    /// `left.end == right.start`).
    MergeOrder {
        /// Provenance range of the left operand.
        left: Range<usize>,
        /// Provenance range of the right operand.
        right: Range<usize>,
    },
}

/// One structured sanitizer finding: which runtime section, what kind,
/// and a rendered message naming the offending worker/blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Runtime entry point the check ran under (`"par_map"`,
    /// `"par_chunks"`, `"try_par_chunks"`, `"par_row_blocks"`,
    /// `"tree_reduce"`).
    pub section: &'static str,
    /// Structured evidence.
    pub kind: ViolationKind,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sanitizer[{}]: ", self.section)?;
        match &self.kind {
            ViolationKind::PartitionOverlap { a, b, overlap } => write!(
                f,
                "blocks {a} and {b} overlap on items {}..{}",
                overlap.start, overlap.end
            ),
            ViolationKind::PartitionGap { gap } => {
                write!(f, "items {}..{} belong to no block", gap.start, gap.end)
            }
            ViolationKind::BlockClaimMismatch {
                worker,
                claimed,
                actual,
            } => write!(
                f,
                "worker {worker} was dispatched {actual} element(s) but its partition entry claims {claimed}"
            ),
            ViolationKind::MergeOrder { left, right } => write!(
                f,
                "merged partials {}..{} with {}..{} out of the fixed left-to-right order",
                left.start, left.end, right.start, right.end
            ),
        }
    }
}

/// Deliberate corruption applied to the *shadow* state of the next
/// matching check on this thread (one-shot). Execution is never altered:
/// these exist so tests can prove the sanitizer fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Seed {
    /// Make the next partition audit see block 0 extended one item into
    /// block 1.
    OverlapPartitions,
    /// Make the next `tree_reduce` merge check see its first two partials
    /// in swapped order.
    PermuteMergeOrder,
}

thread_local! {
    static CAPTURED: RefCell<Option<Vec<Violation>>> = const { RefCell::new(None) };
    static SEEDED: RefCell<Option<Seed>> = const { RefCell::new(None) };
}

/// Arm a one-shot shadow corruption for the next matching check on this
/// thread (see [`Seed`]). Test-only by intent.
pub fn seed(s: Seed) {
    SEEDED.with(|c| *c.borrow_mut() = Some(s));
}

fn take_seed(want: Seed) -> bool {
    SEEDED.with(|c| {
        let mut cur = c.borrow_mut();
        if *cur == Some(want) {
            *cur = None;
            true
        } else {
            false
        }
    })
}

/// Run `f` with violations collected instead of panicking; returns `f`'s
/// result plus every violation raised on this thread during the call.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Violation>) {
    CAPTURED.with(|c| {
        let prev = c.borrow_mut().replace(Vec::new());
        assert!(prev.is_none(), "sanitizer::capture: nested capture");
    });
    let r = f();
    let got = CAPTURED.with(|c| c.borrow_mut().take()).unwrap_or_default();
    (r, got)
}

fn capturing() -> bool {
    CAPTURED.with(|c| c.borrow().is_some())
}

/// Runtime kill switch: `HARP_SANITIZER=off` (or `0`) disables the checks
/// without recompiling. Read once per process.
fn env_on() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        !matches!(
            std::env::var("HARP_SANITIZER").as_deref(),
            Ok("off") | Ok("0")
        )
    })
}

fn active() -> bool {
    capturing() || env_on()
}

fn raise(v: Violation) {
    SANITIZER_VIOLATIONS.add(1);
    let done = CAPTURED.with(|c| {
        if let Some(buf) = c.borrow_mut().as_mut() {
            buf.push(v.clone());
            true
        } else {
            false
        }
    });
    if !done {
        harp_obs::warn_always(
            "runtime.sanitizer_violation",
            &[("violation", FieldValue::Str(v.to_string()))],
        );
        // The sanitizer's contract: an uncaptured determinism violation
        // must abort the test/drill that exposed it.
        // lint: allow(panic) — see above
        panic!("{v}");
    }
}

/// Audit a partition of `n` items: blocks must be in order, pairwise
/// disjoint, non-empty, and cover exactly `0..n`. Checks a shadow copy
/// (possibly corrupted by [`Seed::OverlapPartitions`]); never alters the
/// real block list.
pub(crate) fn audit_blocks(section: &'static str, blocks: &[(usize, usize)], n: usize) {
    if !active() {
        return;
    }
    let mut shadow: Vec<(usize, usize)> = blocks.to_vec();
    if shadow.len() >= 2 && take_seed(Seed::OverlapPartitions) {
        shadow[0].1 += 1; // reach one item into block 1
    }
    let mut next = 0usize;
    for (i, &(lo, hi)) in shadow.iter().enumerate() {
        if lo < next {
            raise(Violation {
                section,
                kind: ViolationKind::PartitionOverlap {
                    a: i.saturating_sub(1),
                    b: i,
                    overlap: lo..next.min(hi.max(lo)),
                },
            });
        } else if lo > next {
            raise(Violation {
                section,
                kind: ViolationKind::PartitionGap { gap: next..lo },
            });
        }
        if hi <= lo {
            raise(Violation {
                section,
                kind: ViolationKind::PartitionGap { gap: lo..lo },
            });
        }
        next = next.max(hi);
    }
    if next != n {
        let gap = if next < n { next..n } else { n..next };
        raise(Violation {
            section,
            kind: ViolationKind::PartitionGap { gap },
        });
    }
}

/// Check that the block dispatched to `worker` spans exactly the
/// `claimed` elements its partition entry owns.
pub(crate) fn check_claim(section: &'static str, worker: usize, claimed: usize, actual: usize) {
    if !active() || claimed == actual {
        return;
    }
    raise(Violation {
        section,
        kind: ViolationKind::BlockClaimMismatch {
            worker,
            claimed,
            actual,
        },
    });
}

/// Provenance labels for `tree_reduce`: slot `i` starts as `i..i+1`.
/// [`Seed::PermuteMergeOrder`] swaps the first two labels so the merge
/// check sees an out-of-order combination.
pub(crate) fn merge_labels(n: usize) -> Vec<Range<usize>> {
    let mut labels: Vec<Range<usize>> = (0..n).map(|i| i..i + 1).collect();
    if n >= 2 && active() && take_seed(Seed::PermuteMergeOrder) {
        labels.swap(0, 1);
    }
    labels
}

/// Check one `tree_reduce` combination step and return the merged label.
/// In the fixed left-to-right tree every merge joins adjacent in-order
/// ranges (`left.end == right.start`).
pub(crate) fn check_merge(left: Range<usize>, right: Range<usize>) -> Range<usize> {
    if active() && left.end != right.start {
        raise(Violation {
            section: "tree_reduce",
            kind: ViolationKind::MergeOrder {
                left: left.clone(),
                right: right.clone(),
            },
        });
    }
    left.start.min(right.start)..left.end.max(right.end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_partition_raises_nothing() {
        let ((), got) = capture(|| audit_blocks("par_map", &[(0, 3), (3, 6), (6, 7)], 7));
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn overlap_gap_and_short_cover_are_flagged() {
        let ((), got) = capture(|| {
            audit_blocks("par_map", &[(0, 4), (3, 6)], 6); // overlap at 3..4
            audit_blocks("par_map", &[(0, 2), (3, 6)], 6); // gap at 2..3
            audit_blocks("par_map", &[(0, 2), (2, 5)], 6); // 5..6 uncovered
        });
        assert_eq!(got.len(), 3, "{got:?}");
        assert!(matches!(
            &got[0].kind,
            ViolationKind::PartitionOverlap { a: 0, b: 1, overlap } if *overlap == (3..4)
        ));
        assert!(matches!(&got[1].kind, ViolationKind::PartitionGap { gap } if *gap == (2..3)));
        assert!(matches!(&got[2].kind, ViolationKind::PartitionGap { gap } if *gap == (5..6)));
    }

    #[test]
    fn claim_mismatch_names_the_worker() {
        let ((), got) = capture(|| check_claim("par_row_blocks", 2, 40, 35));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].section, "par_row_blocks");
        assert!(matches!(
            got[0].kind,
            ViolationKind::BlockClaimMismatch {
                worker: 2,
                claimed: 40,
                actual: 35
            }
        ));
    }

    #[test]
    fn in_order_merges_are_clean_and_out_of_order_flagged() {
        let ((), got) = capture(|| {
            let m = check_merge(0..1, 1..2);
            assert_eq!(m, 0..2);
            let _ = check_merge(2..3, 0..2); // wrong order
        });
        assert_eq!(got.len(), 1);
        assert!(matches!(
            &got[0].kind,
            ViolationKind::MergeOrder { left, right } if *left == (2..3) && *right == (0..2)
        ));
    }

    #[test]
    fn seeds_are_one_shot() {
        seed(Seed::OverlapPartitions);
        let ((), got) = capture(|| {
            audit_blocks("par_chunks", &[(0, 2), (2, 4)], 4);
            audit_blocks("par_chunks", &[(0, 2), (2, 4)], 4);
        });
        assert_eq!(got.len(), 1, "seed must corrupt exactly one audit");
    }

    #[test]
    fn violations_render_with_section_and_worker() {
        let v = Violation {
            section: "par_row_blocks",
            kind: ViolationKind::BlockClaimMismatch {
                worker: 3,
                claimed: 10,
                actual: 12,
            },
        };
        let s = v.to_string();
        assert!(s.contains("par_row_blocks"), "{s}");
        assert!(s.contains("worker 3"), "{s}");
    }
}
