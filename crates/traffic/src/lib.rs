//! # harp-traffic
//!
//! Traffic matrices and their dynamics for the HARP reproduction:
//!
//! * [`TrafficMatrix`] — dense per-node-pair demands with the
//!   transformations the paper's invariance arguments rely on (transpose,
//!   node permutation).
//! * [`GravityConfig`] / [`gravity_series`] — seeded gravity-model demand
//!   with diurnal structure and lognormal noise (the synthetic-TM family
//!   used by DOTE's public code, which the paper reuses for KDL).
//! * [`predict`] — the three TM predictors evaluated in §5.7: moving
//!   average, exponential smoothing, per-cell linear regression.

mod generate;
mod matrix;
pub mod predict;

pub use generate::{gravity_series, GravityConfig};
pub use matrix::TrafficMatrix;
