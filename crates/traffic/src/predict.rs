//! Traffic-matrix predictors (§5.7): moving average, exponential smoothing,
//! and per-cell linear regression over a sliding window.

use crate::matrix::TrafficMatrix;

/// A one-step-ahead TM predictor consuming a history of past matrices
/// (oldest first).
pub trait Predictor {
    /// Predict the next matrix from `history` (must be nonempty; panics
    /// otherwise). Implementations use at most their configured window.
    fn predict(&self, history: &[TrafficMatrix]) -> TrafficMatrix;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Per-cell mean of the last `window` matrices (the paper's MovAvg with
/// window 12).
#[derive(Clone, Copy, Debug)]
pub struct MovAvg {
    /// Number of trailing matrices to average.
    pub window: usize,
}

impl Predictor for MovAvg {
    fn predict(&self, history: &[TrafficMatrix]) -> TrafficMatrix {
        assert!(!history.is_empty(), "predictor needs history");
        let w = self.window.min(history.len()).max(1);
        let tail = &history[history.len() - w..];
        let n = tail[0].num_nodes();
        let mut acc = vec![0.0f64; n * n];
        for tm in tail {
            assert_eq!(tm.num_nodes(), n, "history node-count mismatch");
            for (a, d) in acc.iter_mut().zip(tm.as_slice()) {
                *a += d;
            }
        }
        for a in acc.iter_mut() {
            *a /= w as f64;
        }
        TrafficMatrix::from_dense(n, acc)
    }

    fn name(&self) -> &'static str {
        "MovAvg"
    }
}

/// Per-cell exponential smoothing with factor `alpha` (the paper uses 0.5):
/// `s_t = alpha * x_t + (1 - alpha) * s_{t-1}`, prediction is `s_T`.
#[derive(Clone, Copy, Debug)]
pub struct ExpSmooth {
    /// Smoothing factor in `(0, 1]`.
    pub alpha: f64,
}

impl Predictor for ExpSmooth {
    fn predict(&self, history: &[TrafficMatrix]) -> TrafficMatrix {
        assert!(!history.is_empty(), "predictor needs history");
        assert!(self.alpha > 0.0 && self.alpha <= 1.0);
        let n = history[0].num_nodes();
        let mut s: Vec<f64> = history[0].as_slice().to_vec();
        for tm in &history[1..] {
            assert_eq!(tm.num_nodes(), n, "history node-count mismatch");
            for (si, xi) in s.iter_mut().zip(tm.as_slice()) {
                *si = self.alpha * xi + (1.0 - self.alpha) * *si;
            }
        }
        TrafficMatrix::from_dense(n, s)
    }

    fn name(&self) -> &'static str {
        "ExpSmooth"
    }
}

/// Per-cell ordinary-least-squares line over the last `window` matrices,
/// extrapolated one step ahead (clamped at zero).
#[derive(Clone, Copy, Debug)]
pub struct LinReg {
    /// Number of trailing matrices to fit.
    pub window: usize,
}

impl Predictor for LinReg {
    fn predict(&self, history: &[TrafficMatrix]) -> TrafficMatrix {
        assert!(!history.is_empty(), "predictor needs history");
        let w = self.window.min(history.len()).max(1);
        let tail = &history[history.len() - w..];
        let n = tail[0].num_nodes();
        if w == 1 {
            return tail[0].clone();
        }
        // x = 0..w-1, predict at x = w. Precompute sums over x.
        let wf = w as f64;
        let sx: f64 = (0..w).map(|i| i as f64).sum();
        let sxx: f64 = (0..w).map(|i| (i * i) as f64).sum();
        let denom = wf * sxx - sx * sx;
        let mut out = vec![0.0f64; n * n];
        for c in 0..n * n {
            let mut sy = 0.0;
            let mut sxy = 0.0;
            for (i, tm) in tail.iter().enumerate() {
                let y = tm.as_slice()[c];
                sy += y;
                sxy += i as f64 * y;
            }
            let slope = (wf * sxy - sx * sy) / denom;
            let intercept = (sy - slope * sx) / wf;
            out[c] = (intercept + slope * wf).max(0.0);
        }
        TrafficMatrix::from_dense(n, out)
    }

    fn name(&self) -> &'static str {
        "LinReg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tm(n: usize, v: f64) -> TrafficMatrix {
        let mut m = TrafficMatrix::zeros(n);
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    m.set_demand(s, t, v);
                }
            }
        }
        m
    }

    #[test]
    fn movavg_averages_window() {
        let hist = vec![tm(2, 1.0), tm(2, 2.0), tm(2, 3.0), tm(2, 4.0)];
        let p = MovAvg { window: 2 }.predict(&hist);
        assert!((p.demand(0, 1) - 3.5).abs() < 1e-9);
        let p_all = MovAvg { window: 10 }.predict(&hist);
        assert!((p_all.demand(0, 1) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn expsmooth_weights_recent() {
        let hist = vec![tm(2, 0.0), tm(2, 10.0)];
        let p = ExpSmooth { alpha: 0.5 }.predict(&hist);
        assert!((p.demand(0, 1) - 5.0).abs() < 1e-9);
        let p9 = ExpSmooth { alpha: 0.9 }.predict(&hist);
        assert!(p9.demand(0, 1) > p.demand(0, 1));
    }

    #[test]
    fn linreg_extrapolates_trend() {
        // y = 2 + 3x for x = 0..3 → predict 2 + 3*4 = 14 at x = 4
        let hist: Vec<TrafficMatrix> = (0..4).map(|i| tm(2, 2.0 + 3.0 * i as f64)).collect();
        let p = LinReg { window: 4 }.predict(&hist);
        assert!((p.demand(0, 1) - 14.0).abs() < 1e-6);
    }

    #[test]
    fn linreg_clamps_negative() {
        let hist: Vec<TrafficMatrix> = (0..4).map(|i| tm(2, 9.0 - 3.0 * i as f64)).collect();
        let p = LinReg { window: 4 }.predict(&hist);
        assert_eq!(p.demand(0, 1), 0.0);
    }

    #[test]
    fn single_history_matrix_is_identity() {
        let hist = vec![tm(3, 7.0)];
        for pred in [
            &MovAvg { window: 12 } as &dyn Predictor,
            &ExpSmooth { alpha: 0.5 },
            &LinReg { window: 12 },
        ] {
            let p = pred.predict(&hist);
            assert!((p.demand(0, 1) - 7.0).abs() < 1e-9, "{}", pred.name());
        }
    }
}
