//! Seeded gravity-model traffic generation with temporal structure.

use rand::Rng;
use rand_distr_lognormal::sample_lognormal;

use crate::matrix::TrafficMatrix;

/// A tiny internal lognormal sampler (Box–Muller), avoiding an extra
/// dependency on `rand_distr`.
mod rand_distr_lognormal {
    use rand::Rng;

    /// Sample `exp(N(mu, sigma))` using Box–Muller.
    pub fn sample_lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mu + sigma * z).exp()
    }
}

/// Configuration for [`gravity_series`].
#[derive(Clone, Debug)]
pub struct GravityConfig {
    /// Nodes that originate/absorb traffic (demands only between these).
    pub edge_nodes: Vec<usize>,
    /// Total number of nodes in the matrix.
    pub num_nodes: usize,
    /// Sum of all demands in the *base* matrix (before temporal factors).
    pub total_demand: f64,
    /// Lognormal sigma of per-node gravity weights (0 = uniform).
    pub weight_sigma: f64,
    /// Amplitude of the diurnal sine component in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Diurnal period in snapshots.
    pub diurnal_period: usize,
    /// Lognormal sigma of per-snapshot per-cell multiplicative noise.
    pub noise_sigma: f64,
    /// Optional explicit gravity masses per node (length `num_nodes`).
    /// When set, node weight = `base_weights[u] * lognormal(weight_sigma)`;
    /// the classic choice is the node's total adjacent capacity, which
    /// keeps stub PoPs from demanding more than their access links carry
    /// (and therefore keeps the TE problem non-degenerate).
    pub base_weights: Option<Vec<f64>>,
}

impl GravityConfig {
    /// A reasonable default: all nodes are edge nodes, moderate skew and
    /// noise, period of 48 snapshots.
    pub fn uniform(num_nodes: usize, total_demand: f64) -> Self {
        GravityConfig {
            edge_nodes: (0..num_nodes).collect(),
            num_nodes,
            total_demand,
            weight_sigma: 0.8,
            diurnal_amplitude: 0.3,
            diurnal_period: 48,
            noise_sigma: 0.1,
            base_weights: None,
        }
    }
}

/// Generate `count` temporally-correlated traffic matrices.
///
/// Base demand follows a gravity model (`d(s,t) ∝ w_s * w_t` for
/// lognormal node weights `w`), each cell then evolves as
/// `base * (1 + A sin(2π t / period + φ_st)) * lognormal-noise`, with a
/// per-cell random phase so cells peak at different times.
pub fn gravity_series<R: Rng>(
    cfg: &GravityConfig,
    rng: &mut R,
    count: usize,
) -> Vec<TrafficMatrix> {
    assert!(!cfg.edge_nodes.is_empty(), "need edge nodes");
    assert!(cfg.edge_nodes.iter().all(|&u| u < cfg.num_nodes));
    assert!((0.0..1.0).contains(&cfg.diurnal_amplitude));
    assert!(cfg.diurnal_period > 0);

    let m = cfg.edge_nodes.len();
    if let Some(bw) = &cfg.base_weights {
        assert_eq!(bw.len(), cfg.num_nodes, "base_weights length");
        assert!(bw.iter().all(|w| *w >= 0.0), "base_weights must be >= 0");
    }
    let weights: Vec<f64> = cfg
        .edge_nodes
        .iter()
        .map(|&u| {
            let base = cfg.base_weights.as_ref().map(|bw| bw[u]).unwrap_or(1.0);
            base * sample_lognormal(rng, 0.0, cfg.weight_sigma)
        })
        .collect();

    // base matrix over edge-node pairs
    let mut base = vec![0.0f64; m * m];
    let mut total = 0.0;
    for i in 0..m {
        for j in 0..m {
            if i != j {
                base[i * m + j] = weights[i] * weights[j];
                total += base[i * m + j];
            }
        }
    }
    let scale = if total > 0.0 {
        cfg.total_demand / total
    } else {
        0.0
    };
    for b in base.iter_mut() {
        *b *= scale;
    }

    let phases: Vec<f64> = (0..m * m)
        .map(|_| rng.gen::<f64>() * 2.0 * std::f64::consts::PI)
        .collect();

    (0..count)
        .map(|t| {
            let mut tm = TrafficMatrix::zeros(cfg.num_nodes);
            for i in 0..m {
                for j in 0..m {
                    if i == j {
                        continue;
                    }
                    let diurnal = 1.0
                        + cfg.diurnal_amplitude
                            * (2.0 * std::f64::consts::PI * t as f64 / cfg.diurnal_period as f64
                                + phases[i * m + j])
                                .sin();
                    let noise = if cfg.noise_sigma > 0.0 {
                        sample_lognormal(rng, 0.0, cfg.noise_sigma)
                    } else {
                        1.0
                    };
                    let d = base[i * m + j] * diurnal * noise;
                    tm.set_demand(cfg.edge_nodes[i], cfg.edge_nodes[j], d.max(0.0));
                }
            }
            tm
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn series_shape_and_determinism() {
        let cfg = GravityConfig::uniform(6, 100.0);
        let s1 = gravity_series(&cfg, &mut StdRng::seed_from_u64(1), 10);
        let s2 = gravity_series(&cfg, &mut StdRng::seed_from_u64(1), 10);
        assert_eq!(s1.len(), 10);
        assert_eq!(s1, s2);
        for tm in &s1 {
            assert_eq!(tm.num_nodes(), 6);
            assert!(tm.total() > 0.0);
        }
    }

    #[test]
    fn base_total_close_to_target_without_noise() {
        let mut cfg = GravityConfig::uniform(8, 500.0);
        cfg.noise_sigma = 0.0;
        cfg.diurnal_amplitude = 0.0;
        let s = gravity_series(&cfg, &mut StdRng::seed_from_u64(2), 1);
        assert!((s[0].total() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn only_edge_nodes_carry_demand() {
        let mut cfg = GravityConfig::uniform(6, 100.0);
        cfg.edge_nodes = vec![1, 4];
        let s = gravity_series(&cfg, &mut StdRng::seed_from_u64(3), 2);
        for tm in &s {
            for u in 0..6 {
                for v in 0..6 {
                    if !((u == 1 && v == 4) || (u == 4 && v == 1)) {
                        assert_eq!(tm.demand(u, v), 0.0, "({u},{v})");
                    }
                }
            }
        }
    }

    #[test]
    fn temporal_correlation_is_present() {
        // consecutive matrices are closer than distant ones on average
        let mut cfg = GravityConfig::uniform(10, 100.0);
        cfg.noise_sigma = 0.05;
        cfg.diurnal_period = 40;
        let s = gravity_series(&cfg, &mut StdRng::seed_from_u64(4), 40);
        let near = s[0].mean_relative_error(&s[1], 1e-9);
        let far = s[0].mean_relative_error(&s[20], 1e-9);
        assert!(near < far, "near {near} vs far {far}");
    }
}
