//! Dense traffic matrices.

/// A dense `n x n` traffic matrix: `demand(s, t)` is the offered load from
/// node `s` to node `t` (diagonal is ignored and kept at zero).
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficMatrix {
    n: usize,
    data: Vec<f64>,
}

impl TrafficMatrix {
    /// An all-zero matrix over `n` nodes.
    pub fn zeros(n: usize) -> Self {
        TrafficMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Build from a dense row-major buffer of length `n * n`.
    pub fn from_dense(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "traffic matrix size");
        assert!(
            data.iter().all(|d| d.is_finite() && *d >= 0.0),
            "demands must be finite and nonnegative"
        );
        let mut tm = TrafficMatrix { n, data };
        for i in 0..n {
            tm.data[i * n + i] = 0.0;
        }
        tm
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Demand from `s` to `t`.
    pub fn demand(&self, s: usize, t: usize) -> f64 {
        self.data[s * self.n + t]
    }

    /// Set the demand from `s` to `t` (self-demand is silently dropped).
    pub fn set_demand(&mut self, s: usize, t: usize, d: f64) {
        assert!(d.is_finite() && d >= 0.0, "demand must be >= 0, got {d}");
        if s != t {
            self.data[s * self.n + t] = d;
        }
    }

    /// Raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Sum of all demands.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Demands for an explicit flow list, in order.
    pub fn demands_for(&self, flows: &[(usize, usize)]) -> Vec<f64> {
        flows.iter().map(|&(s, t)| self.demand(s, t)).collect()
    }

    /// The transposed matrix (demand of `(s,t)` and `(t,s)` swapped) — the
    /// transformation discussed in §2.2.
    pub fn transpose(&self) -> TrafficMatrix {
        let mut out = TrafficMatrix::zeros(self.n);
        for s in 0..self.n {
            for t in 0..self.n {
                out.data[t * self.n + s] = self.data[s * self.n + t];
            }
        }
        out
    }

    /// Relabel nodes: node `i` becomes `perm[i]`.
    pub fn permute(&self, perm: &[usize]) -> TrafficMatrix {
        assert_eq!(perm.len(), self.n, "permutation length");
        let mut out = TrafficMatrix::zeros(self.n);
        for s in 0..self.n {
            for t in 0..self.n {
                out.data[perm[s] * self.n + perm[t]] = self.data[s * self.n + t];
            }
        }
        out
    }

    /// Multiply every demand by `factor`.
    pub fn scaled(&self, factor: f64) -> TrafficMatrix {
        assert!(factor >= 0.0 && factor.is_finite());
        TrafficMatrix {
            n: self.n,
            data: self.data.iter().map(|d| d * factor).collect(),
        }
    }

    /// Elementwise maximum with zero of `self - other` ... no: absolute
    /// relative error `|self - other| / max(self, floor)` averaged over
    /// cells with demand above `floor`. Used to score predictors.
    pub fn mean_relative_error(&self, other: &TrafficMatrix, floor: f64) -> f64 {
        assert_eq!(self.n, other.n);
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for (a, b) in self.data.iter().zip(&other.data) {
            if *a > floor {
                sum += (a - b).abs() / a;
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum / cnt as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut tm = TrafficMatrix::zeros(3);
        tm.set_demand(0, 1, 5.0);
        tm.set_demand(1, 2, 3.0);
        tm.set_demand(2, 2, 9.0); // dropped
        assert_eq!(tm.demand(0, 1), 5.0);
        assert_eq!(tm.demand(2, 2), 0.0);
        assert_eq!(tm.total(), 8.0);
        assert_eq!(tm.demands_for(&[(1, 2), (0, 1)]), vec![3.0, 5.0]);
    }

    #[test]
    fn transpose_swaps() {
        let mut tm = TrafficMatrix::zeros(2);
        tm.set_demand(0, 1, 7.0);
        let t = tm.transpose();
        assert_eq!(t.demand(1, 0), 7.0);
        assert_eq!(t.demand(0, 1), 0.0);
        // double transpose is identity
        assert_eq!(t.transpose(), tm);
    }

    #[test]
    fn permute_consistent_with_transpose() {
        let mut tm = TrafficMatrix::zeros(3);
        tm.set_demand(0, 1, 1.0);
        tm.set_demand(1, 2, 2.0);
        let perm = vec![2, 0, 1];
        let p = tm.permute(&perm);
        assert_eq!(p.demand(2, 0), 1.0);
        assert_eq!(p.demand(0, 1), 2.0);
        assert_eq!(p.total(), tm.total());
    }

    #[test]
    fn from_dense_zeroes_diagonal() {
        let tm = TrafficMatrix::from_dense(2, vec![9.0, 1.0, 2.0, 9.0]);
        assert_eq!(tm.demand(0, 0), 0.0);
        assert_eq!(tm.demand(1, 1), 0.0);
        assert_eq!(tm.demand(0, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn rejects_negative() {
        TrafficMatrix::from_dense(2, vec![0.0, -1.0, 0.0, 0.0]);
    }

    #[test]
    fn relative_error() {
        let a = TrafficMatrix::from_dense(2, vec![0.0, 10.0, 20.0, 0.0]);
        let b = TrafficMatrix::from_dense(2, vec![0.0, 11.0, 18.0, 0.0]);
        let e = a.mean_relative_error(&b, 1e-9);
        assert!((e - 0.1).abs() < 1e-9);
    }
}
