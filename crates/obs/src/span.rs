//! Hierarchical tracing spans with monotonic timing.
//!
//! [`span`] returns an RAII guard; while it lives, spans opened on the
//! same thread nest under it. On drop the duration is accumulated in a
//! process-global table keyed by the hierarchical path
//! (`train.step/forward/harp.rau`), which [`span_report`] renders as an
//! indented tree and [`crate::dump_metrics`] emits as `metric.span`
//! events. Nesting is **per thread**: a span opened inside a
//! `harp-runtime` worker roots its own path on that worker's stack.
//!
//! With the sink off, [`span`] is a branch returning an inert guard.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::enabled;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// path -> (count, total_ns), keyed by "/"-joined span names.
static AGGREGATE: Mutex<BTreeMap<String, (u64, u64)>> = Mutex::new(BTreeMap::new());

/// Aggregated statistics for one span path.
#[derive(Clone, Debug)]
pub struct SpanStat {
    /// "/"-joined hierarchical path (`train.step/forward/harp.gcn`).
    pub path: String,
    /// Times a span with this path closed.
    pub count: u64,
    /// Total nanoseconds across all closures.
    pub total_ns: u64,
}

impl SpanStat {
    /// Mean nanoseconds per closure (0 when never closed).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Nesting depth (number of ancestors).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }
}

/// RAII guard for one timed scope; created by [`span`]. Dropping it stops
/// the clock and accumulates the duration under the hierarchical path.
#[must_use = "a Span measures the scope it is alive in; dropping it immediately measures nothing"]
pub struct Span {
    start: Option<Instant>,
}

/// Open a timed span named `name` on this thread. Inert when the sink is
/// off. Guards must drop in reverse open order (natural lexical scoping);
/// out-of-order drops are tolerated but mis-attribute the path.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    Span {
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        if let Ok(mut agg) = AGGREGATE.lock() {
            let slot = agg.entry(path).or_insert((0, 0));
            slot.0 += 1;
            slot.1 = slot.1.saturating_add(ns);
        }
    }
}

/// Snapshot every span path accumulated so far, sorted by path (which
/// groups children under parents).
pub fn span_snapshot() -> Vec<SpanStat> {
    AGGREGATE
        .lock()
        .map(|agg| {
            agg.iter()
                .map(|(path, &(count, total_ns))| SpanStat {
                    path: path.clone(),
                    count,
                    total_ns,
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Render the aggregated spans as an indented tree with per-path count,
/// total milliseconds, and share of the parent's total. Empty string when
/// nothing was recorded.
pub fn span_report() -> String {
    let stats = span_snapshot();
    if stats.is_empty() {
        return String::new();
    }
    // Parent totals for share-of-parent percentages.
    let totals: BTreeMap<&str, u64> = stats
        .iter()
        .map(|s| (s.path.as_str(), s.total_ns))
        .collect();
    let mut out = String::new();
    for s in &stats {
        let indent = "  ".repeat(s.depth());
        let name = s.path.rsplit('/').next().unwrap_or(&s.path);
        let parent_total = s
            .path
            .rfind('/')
            .and_then(|cut| totals.get(&s.path[..cut]).copied());
        let share = match parent_total {
            Some(p) if p > 0 => format!("  {:5.1}%", 100.0 * s.total_ns as f64 / p as f64),
            _ => String::new(),
        };
        out.push_str(&format!(
            "{indent}{name:<24} x{:<6} {:>10.3} ms{share}\n",
            s.count,
            s.total_ns as f64 / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_is_safe_without_sink() {
        let g = span("unit.outer");
        {
            let _inner = span("unit.inner");
        }
        drop(g);
        // With the sink off nothing accumulates; with it on (workspace CI
        // runs under HARP_OBS=jsonl) the paths nest.
        if crate::enabled() {
            let stats = span_snapshot();
            assert!(stats.iter().any(|s| s.path == "unit.outer"));
            assert!(stats.iter().any(|s| s.path == "unit.outer/unit.inner"));
        }
    }

    #[test]
    fn depth_counts_ancestors() {
        let s = SpanStat {
            path: "a/b/c".into(),
            count: 1,
            total_ns: 10,
        };
        assert_eq!(s.depth(), 2);
        assert_eq!(s.mean_ns(), 10);
    }
}
