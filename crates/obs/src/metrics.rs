//! Typed counters and histograms with a process-global registry.
//!
//! Counters and histograms are declared as `static`s at their point of use
//! (`static MACS: Counter = Counter::new("kernels.macs");`) and register
//! themselves in a global list on first touch, so [`metrics_snapshot`] can
//! enumerate everything that was ever incremented. With the sink off,
//! [`Counter::add`] and [`Histogram::record`] are a single atomic load and
//! a branch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::enabled;

static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// A monotonically-increasing named total (MACs executed, rows
/// parallelized, events seen). Declare as a `static`; increments are
/// relaxed atomics and no-ops while the sink is off.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A zeroed counter (const: usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n`. No-op while the sink is off.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total (0 until first enabled `add`).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn ensure_registered(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            if let Ok(mut reg) = COUNTERS.lock() {
                reg.push(self);
            }
        }
    }
}

/// A named duration/size distribution tracked as count / sum / min / max
/// (mean derivable). Cheap enough for per-op timing when profiling is on;
/// a single branch when the sink is off.
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// An empty histogram (const: usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one observation. No-op while the sink is off.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Snapshot the current state.
    pub fn snapshot(&'static self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn ensure_registered(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            if let Ok(mut reg) = HISTOGRAMS.lock() {
                reg.push(self);
            }
        }
    }
}

/// Point-in-time view of a [`Counter`].
#[derive(Clone, Copy, Debug)]
pub struct CounterSnapshot {
    /// Registry name.
    pub name: &'static str,
    /// Total at snapshot time.
    pub value: u64,
}

/// Point-in-time view of a [`Histogram`].
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: &'static str,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Dynamic-name histograms (per-OpKind timings): interned once per name,
/// then as cheap as a `static` histogram. The leaked allocation is bounded
/// by the number of distinct names ever passed (the tape op set is fixed
/// and small).
pub fn histogram(name: &str) -> &'static Histogram {
    static DYNAMIC: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());
    let mut reg = DYNAMIC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(h) = reg.iter().find(|h| h.name == name) {
        return h;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new(leaked)));
    reg.push(h);
    h
}

/// Snapshot every counter and histogram touched so far, each sorted by
/// name for stable output.
pub fn metrics_snapshot() -> (Vec<CounterSnapshot>, Vec<HistogramSnapshot>) {
    let mut counters: Vec<CounterSnapshot> = COUNTERS
        .lock()
        .map(|reg| {
            reg.iter()
                .map(|c| CounterSnapshot {
                    name: c.name,
                    value: c.get(),
                })
                .collect()
        })
        .unwrap_or_default();
    counters.sort_by_key(|c| c.name);
    let mut histograms: Vec<HistogramSnapshot> = HISTOGRAMS
        .lock()
        .map(|reg| reg.iter().map(|h| h.snapshot()).collect())
        .unwrap_or_default();
    histograms.sort_by_key(|h| h.name);
    (counters, histograms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_inert_without_sink_and_snapshot_sorted() {
        static C: Counter = Counter::new("unit.counter");
        let before = C.get();
        C.add(5);
        if crate::enabled() {
            assert_eq!(C.get(), before + 5);
        } else {
            assert_eq!(C.get(), 0);
        }
        let (counters, _) = metrics_snapshot();
        for w in counters.windows(2) {
            assert!(w[0].name <= w[1].name);
        }
    }

    #[test]
    fn histogram_mean_handles_empty() {
        let snap = HistogramSnapshot {
            name: "x",
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        };
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn dynamic_histograms_intern_by_name() {
        let a = histogram("unit.dyn");
        let b = histogram("unit.dyn");
        assert!(std::ptr::eq(a, b));
    }
}
