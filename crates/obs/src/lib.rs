//! # harp-obs
//!
//! Zero-dependency observability for the HARP workspace: hierarchical
//! tracing spans with monotonic timing, typed counters and histograms, and
//! a structured event sink that renders either as human-readable stderr
//! lines or machine-readable JSONL.
//!
//! ## Configuration
//!
//! The sink is resolved **once per process**, either programmatically via
//! [`init`] (tests, profiling binaries) or lazily from the environment on
//! first use:
//!
//! * `HARP_OBS` — `off` (default), `human` (stderr lines), or `jsonl`
//!   (one JSON object per line).
//! * `HARP_OBS_FILE` — when set with `HARP_OBS=jsonl`, JSONL records are
//!   appended to this file instead of stderr (opened in append mode, one
//!   `write` per line, so concurrent processes interleave whole lines).
//!
//! ## Overhead contract
//!
//! With the sink off, every instrumentation point reduces to one atomic
//! load and a branch: [`enabled`] is the fast path, [`span`] returns an
//! inert guard, [`Counter::add`] / [`Histogram::record`] return
//! immediately, and [`Event::field`] never allocates. The workspace
//! budget is ≤2% on kernel throughput with observability disabled
//! (checked by `bench_kernels --check`, see DESIGN.md §7).
//!
//! ## Model
//!
//! * **Events** ([`event`]) — point-in-time structured records (an epoch
//!   finished, a config warning). Emitted immediately to the sink.
//!   [`warn_always`] falls back to a human stderr line when the sink is
//!   off, for warnings that must never be swallowed.
//! * **Spans** ([`span`]) — scoped wall-time measurements that nest per
//!   thread; durations aggregate by hierarchical path (`train/forward/
//!   harp.gcn`). Dump with [`span_report`] or [`dump_metrics`].
//! * **Counters / histograms** ([`Counter`], [`Histogram`]) — monotonic
//!   totals and duration distributions, registered globally on first
//!   touch and dumped with [`metrics_snapshot`] / [`dump_metrics`].

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

mod metrics;
mod span;

pub use metrics::{
    histogram, metrics_snapshot, Counter, CounterSnapshot, Histogram, HistogramSnapshot,
};
pub use span::{span, span_report, span_snapshot, Span, SpanStat};

/// Where structured records go.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkKind {
    /// Observability disabled: every hook is a no-op branch.
    Off,
    /// Human-readable `[obs] name k=v ...` lines on stderr.
    Human,
    /// One JSON object per line, to `HARP_OBS_FILE` (append) or stderr.
    Jsonl,
}

/// Process-wide observability configuration (see [`init`]).
#[derive(Clone, Debug)]
pub struct Config {
    /// Output format / destination kind.
    pub sink: SinkKind,
    /// JSONL destination path (append mode); `None` = stderr.
    pub file: Option<std::path::PathBuf>,
    /// Enable per-op tape timing (`HARP_OBS_OPS=1`). Off by default even
    /// with a sink on: it locks a histogram per recorded tape node, which
    /// is profiling-grade overhead, not always-on-metrics-grade.
    pub op_timing: bool,
}

impl Config {
    /// The disabled configuration.
    pub fn off() -> Self {
        Config {
            sink: SinkKind::Off,
            file: None,
            op_timing: false,
        }
    }

    /// JSONL records appended to `path`.
    pub fn jsonl_to(path: impl Into<std::path::PathBuf>) -> Self {
        Config {
            sink: SinkKind::Jsonl,
            file: Some(path.into()),
            op_timing: false,
        }
    }

    /// Same sink, with per-op tape timing enabled.
    pub fn with_op_timing(mut self) -> Self {
        self.op_timing = true;
        self
    }
}

struct State {
    sink: SinkKind,
    /// Serialized writer for JSONL file output; `None` = stderr.
    writer: Option<Mutex<std::fs::File>>,
}

static STATE: OnceLock<State> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);
static OP_TIMING: AtomicBool = AtomicBool::new(false);
static START: OnceLock<Instant> = OnceLock::new();

fn state() -> &'static State {
    STATE.get_or_init(|| build_state(config_from_env()))
}

fn build_state(cfg: Config) -> State {
    let _ = START.get_or_init(Instant::now);
    let writer = match (&cfg.sink, &cfg.file) {
        (SinkKind::Jsonl, Some(path)) => match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(f) => Some(Mutex::new(f)),
            Err(e) => {
                eprintln!(
                    "harp-obs: cannot open HARP_OBS_FILE {}: {e}; falling back to stderr",
                    path.display()
                );
                None
            }
        },
        _ => None,
    };
    OP_TIMING.store(
        cfg.sink != SinkKind::Off && cfg.op_timing,
        Ordering::Release,
    );
    ENABLED.store(cfg.sink != SinkKind::Off, Ordering::Release);
    State {
        sink: cfg.sink,
        writer,
    }
}

fn config_from_env() -> Config {
    let sink = match std::env::var("HARP_OBS") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "none" => SinkKind::Off,
            "human" | "stderr" | "1" => SinkKind::Human,
            "jsonl" | "json" => SinkKind::Jsonl,
            other => {
                eprintln!("harp-obs: unknown HARP_OBS={other:?} (want off|human|jsonl); off");
                SinkKind::Off
            }
        },
        Err(_) => SinkKind::Off,
    };
    let file = std::env::var("HARP_OBS_FILE").ok().map(Into::into);
    let op_timing = std::env::var("HARP_OBS_OPS")
        .is_ok_and(|v| matches!(v.trim(), "1" | "true" | "on" | "yes"));
    Config {
        sink,
        file,
        op_timing,
    }
}

/// Install `cfg` as the process-wide configuration. Returns `true` when it
/// took effect; `false` when the sink was already resolved (first caller
/// wins — call before any other harp-obs use, e.g. at the top of `main`).
pub fn init(cfg: Config) -> bool {
    let mut installed = false;
    STATE.get_or_init(|| {
        installed = true;
        build_state(cfg)
    });
    installed
}

/// Fast-path check: is any sink active? One atomic load; instrumentation
/// sites branch on this before doing any work.
#[inline]
pub fn enabled() -> bool {
    if STATE.get().is_none() {
        let _ = state();
    }
    ENABLED.load(Ordering::Acquire)
}

/// Is per-op tape timing on (`HARP_OBS_OPS=1` plus an active sink, or
/// [`Config::with_op_timing`])? Checked once per `Tape`, not per op.
#[inline]
pub fn op_timing_enabled() -> bool {
    if STATE.get().is_none() {
        let _ = state();
    }
    OP_TIMING.load(Ordering::Acquire)
}

/// Monotonic microseconds since the first harp-obs touch in this process
/// (the timestamp base for all emitted records).
pub fn now_us() -> u64 {
    u64::try_from(START.get_or_init(Instant::now).elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Flush the JSONL file writer (file sinks only; stderr is unbuffered).
pub fn flush() {
    if let Some(w) = &state().writer {
        if let Ok(mut f) = w.lock() {
            let _ = f.flush();
        }
    }
}

// ----------------------------------------------------------------------
// Events
// ----------------------------------------------------------------------

/// A typed field value on an [`Event`].
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values serialize as JSON `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (JSON-escaped on output).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(f64::from(v))
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// A structured record under construction; build with [`event`], attach
/// fields, then [`Event::emit`] (use [`warn_always`] for warnings that
/// must reach stderr even with the sink off).
#[must_use = "an Event does nothing until emit() / emit_always() is called"]
pub struct Event {
    name: &'static str,
    /// `None` when the sink is off: fields are dropped without allocating.
    fields: Option<Vec<(&'static str, FieldValue)>>,
}

/// Start building an event named `name` (dotted lowercase by convention,
/// e.g. `train.epoch`). Free when the sink is off.
pub fn event(name: &'static str) -> Event {
    Event {
        name,
        fields: enabled().then(Vec::new),
    }
}

impl Event {
    /// Attach a field. No-op (and no allocation of the value) off-sink.
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if let Some(fields) = &mut self.fields {
            fields.push((key, value.into()));
        }
        self
    }

    /// Attach a field computed lazily — `f` runs only when a sink is on.
    /// Use when building the value is itself non-trivial (string
    /// formatting, reductions).
    pub fn field_with(mut self, key: &'static str, f: impl FnOnce() -> FieldValue) -> Self {
        if let Some(fields) = &mut self.fields {
            fields.push((key, f()));
        }
        self
    }

    /// Emit to the active sink; silently dropped when the sink is off.
    pub fn emit(self) {
        if let Some(fields) = self.fields {
            write_record(self.name, &fields);
        }
    }
}

/// Emit a warning-style event that is never swallowed: goes to the active
/// sink when one is on, and to stderr in human form when off. `fields` are
/// always materialized (unlike [`event`], which drops them off-sink).
pub fn warn_always(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if enabled() {
        write_record(name, fields);
    } else {
        eprintln!("[obs] {}{}", name, render_human_fields(fields));
    }
}

fn render_human_fields(fields: &[(&'static str, FieldValue)]) -> String {
    let mut out = String::new();
    for (k, v) in fields {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        match v {
            FieldValue::U64(x) => out.push_str(&x.to_string()),
            FieldValue::I64(x) => out.push_str(&x.to_string()),
            FieldValue::F64(x) => out.push_str(&format!("{x:.6}")),
            FieldValue::Bool(x) => out.push_str(&x.to_string()),
            FieldValue::Str(x) => {
                out.push_str(&format!("{x:?}"));
            }
        }
    }
    out
}

/// Append a minimally-escaped JSON string literal to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // lint: allow(as-cast) — char→u32 is lossless by definition
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_jsonl(name: &str, fields: &[(&'static str, FieldValue)]) -> String {
    let mut out = String::with_capacity(64 + fields.len() * 24);
    out.push_str("{\"ev\":");
    push_json_str(&mut out, name);
    out.push_str(",\"t_us\":");
    out.push_str(&now_us().to_string());
    for (k, v) in fields {
        out.push(',');
        push_json_str(&mut out, k);
        out.push(':');
        match v {
            FieldValue::U64(x) => out.push_str(&x.to_string()),
            FieldValue::I64(x) => out.push_str(&x.to_string()),
            FieldValue::F64(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            FieldValue::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
            FieldValue::Str(x) => push_json_str(&mut out, x),
        }
    }
    out.push_str("}\n");
    out
}

fn write_record(name: &str, fields: &[(&'static str, FieldValue)]) {
    let st = state();
    match st.sink {
        SinkKind::Off => {}
        SinkKind::Human => {
            eprintln!("[obs] {}{}", name, render_human_fields(fields));
        }
        SinkKind::Jsonl => {
            let line = render_jsonl(name, fields);
            match &st.writer {
                Some(w) => {
                    if let Ok(mut f) = w.lock() {
                        let _ = f.write_all(line.as_bytes());
                    }
                }
                None => {
                    let _ = std::io::stderr().write_all(line.as_bytes());
                }
            }
        }
    }
}

/// Emit every counter, histogram, and aggregated span as `metric.counter` /
/// `metric.histogram` / `metric.span` events, then [`flush`]. Call at the
/// end of a run (bench binaries, training drivers) to persist totals.
pub fn dump_metrics() {
    if !enabled() {
        return;
    }
    let (counters, histograms) = metrics_snapshot();
    for c in counters {
        event("metric.counter")
            .field("name", c.name)
            .field("value", c.value)
            .emit();
    }
    for h in histograms {
        event("metric.histogram")
            .field("name", h.name)
            .field("count", h.count)
            .field("sum", h.sum)
            .field("min", if h.count == 0 { 0 } else { h.min })
            .field("max", h.max)
            .field("mean", h.mean())
            .emit();
    }
    for s in span_snapshot() {
        event("metric.span")
            .field("path", s.path.clone())
            .field("count", s.count)
            .field("total_ns", s.total_ns)
            .field("mean_ns", s.mean_ns())
            .emit();
    }
    flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_rendering_escapes_and_types() {
        let line = render_jsonl(
            "unit.test",
            &[
                ("s", FieldValue::Str("a\"b\\c\nd".into())),
                ("u", FieldValue::U64(7)),
                ("i", FieldValue::I64(-3)),
                ("f", FieldValue::F64(1.5)),
                ("nan", FieldValue::F64(f64::NAN)),
                ("b", FieldValue::Bool(true)),
            ],
        );
        assert!(line.starts_with("{\"ev\":\"unit.test\",\"t_us\":"));
        assert!(line.contains("\"s\":\"a\\\"b\\\\c\\nd\""));
        assert!(line.contains("\"u\":7"));
        assert!(line.contains("\"i\":-3"));
        assert!(line.contains("\"f\":1.5"));
        assert!(line.contains("\"nan\":null"));
        assert!(line.contains("\"b\":true"));
        assert!(line.ends_with("}\n"));
    }

    #[test]
    fn human_rendering_is_key_value() {
        let s = render_human_fields(&[
            ("k", FieldValue::U64(2)),
            ("name", FieldValue::Str("x y".into())),
        ]);
        assert_eq!(s, " k=2 name=\"x y\"");
    }

    #[test]
    fn event_without_sink_is_inert() {
        // Sink resolution in the test process defaults to Off unless the
        // environment opts in; either way the builder API must not panic.
        event("unit.inert").field("x", 1u64).emit();
        warn_always("unit.warn", &[("why", FieldValue::Str("test".into()))]);
    }
}
