//! Multi-layer perceptron.

use harp_tensor::{ParamStore, Tape, Var};
use rand::Rng;

use crate::{Activation, Linear};

/// A stack of [`Linear`] layers with a shared hidden activation and an
/// optional output activation. This is the paper's MLP1 / RAU body / DOTE
/// building block.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
    out_act: Activation,
}

impl Mlp {
    /// Build an MLP with the given layer widths, e.g. `[in, h, h, out]`.
    /// Requires at least two widths (one layer).
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        widths: &[usize],
        hidden_act: Activation,
        out_act: Activation,
    ) -> Self {
        assert!(widths.len() >= 2, "mlp: need at least [in, out] widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.{i}"), w[0], w[1], true))
            .collect();
        Mlp {
            layers,
            hidden_act,
            out_act,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers
            .first()
            .expect("MLP has at least one layer")
            .in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers
            .last()
            .expect("MLP has at least one layer")
            .out_dim()
    }

    /// Apply the MLP to rank-2 `[n, in]` or rank-3 `[b, s, in]` input.
    ///
    /// Each `linear + activation` pair goes through
    /// [`Linear::forward_act`], so hidden layers with (leaky) ReLU emit the
    /// fused matmul-bias-activation tape op.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i == last {
                self.out_act
            } else {
                self.hidden_act
            };
            h = layer.forward_act(tape, store, h, act);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_tensor::gradcheck::gradcheck;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            "m",
            &[3, 8, 8, 2],
            Activation::Relu,
            Activation::Identity,
        );
        assert_eq!(mlp.in_dim(), 3);
        assert_eq!(mlp.out_dim(), 2);
        let mut t = Tape::new();
        let x = t.constant(vec![4, 3], vec![0.5; 12]);
        let y = mlp.forward(&mut t, &store, x);
        assert_eq!(t.shape(y).as_matrix(), (4, 2));
    }

    #[test]
    fn end_to_end_gradcheck() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            "m",
            &[3, 6, 1],
            Activation::Tanh,
            Activation::Identity,
        );
        let ids: Vec<_> = store.ids().collect();
        let res = gradcheck(&mut store, &ids, 1e-2, 2e-2, |s| {
            let mut t = Tape::new();
            let x = t.constant(vec![4, 3], (0..12).map(|i| 0.1 * i as f32).collect());
            let y = mlp.forward(&mut t, s, x);
            let l = t.mean_all(y);
            (t, l)
        });
        assert!(res.is_ok(), "{:?}", res);
    }
}
