//! Graph convolution (Kipf–Welling GCN) for node embeddings.
//!
//! HARP's first stage feeds the topology (nodes with total-capacity and
//! degree features) through a small stack of GCN layers and concatenates the
//! per-layer node embeddings (§A.1 / Figure 14 of the paper).

use harp_tensor::{ParamStore, Tape, Var};
use rand::Rng;

use crate::{Activation, Linear};

/// Build the symmetric-normalized adjacency with self loops,
/// `Â = D^{-1/2} (A + I) D^{-1/2}`, as a dense `n x n` row-major matrix.
///
/// `edges` are directed `(u, v)` pairs; both directions contribute (the
/// matrix is symmetrized) because GCN message passing treats a WAN link as
/// bidirectional connectivity.
pub fn normalized_adjacency(n: usize, edges: &[(usize, usize)]) -> Vec<f32> {
    let mut a = vec![0.0f32; n * n];
    for i in 0..n {
        a[i * n + i] = 1.0;
    }
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge ({u},{v}) out of {n} nodes");
        a[u * n + v] = 1.0;
        a[v * n + u] = 1.0;
    }
    let mut deg = vec![0.0f32; n];
    for i in 0..n {
        deg[i] = a[i * n..(i + 1) * n].iter().sum();
    }
    let inv_sqrt: Vec<f32> = deg.iter().map(|d| 1.0 / d.max(1e-12).sqrt()).collect();
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] *= inv_sqrt[i] * inv_sqrt[j];
        }
    }
    a
}

/// One GCN layer: `H' = act(Â H W + b)`.
#[derive(Clone, Debug)]
pub struct GcnConv {
    lin: Linear,
    act: Activation,
}

impl GcnConv {
    /// Create a GCN layer mapping `in_dim` node features to `out_dim`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        act: Activation,
    ) -> Self {
        GcnConv {
            lin: Linear::new(store, rng, name, in_dim, out_dim, true),
            act,
        }
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.lin.out_dim()
    }

    /// Apply the layer. `adj` is the (constant) normalized adjacency
    /// `[n, n]`; `x` the node features `[n, in_dim]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, adj: Var, x: Var) -> Var {
        let agg = tape.matmul(adj, x);
        let y = self.lin.forward(tape, store, agg);
        self.act.apply(tape, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn normalized_adjacency_is_symmetric_with_self_loops() {
        let a = normalized_adjacency(3, &[(0, 1), (1, 2)]);
        for i in 0..3 {
            for j in 0..3 {
                assert!((a[i * 3 + j] - a[j * 3 + i]).abs() < 1e-6);
            }
            // self loops present and normalized to 1/deg
            assert!(a[i * 3 + i] > 0.0);
        }
        // node 0 has degree 2 (self + link to 1): Â[0,0] = 1/2
        assert!((a[0] - 0.5).abs() < 1e-6);
        // non-adjacent pair stays zero
        assert_eq!(a[2], 0.0);
    }

    #[test]
    fn gcn_permutation_equivariance() {
        // Relabeling nodes permutes the output embeddings identically —
        // HARP design Principle 1(b).
        let n = 4;
        let edges = vec![(0usize, 1usize), (1, 2), (2, 3), (3, 0), (0, 2)];
        let perm = [2usize, 0, 3, 1]; // new id of old node i
        let permuted_edges: Vec<(usize, usize)> =
            edges.iter().map(|&(u, v)| (perm[u], perm[v])).collect();

        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let gcn = GcnConv::new(&mut store, &mut rng, "g", 2, 3, Activation::Tanh);

        let feats: Vec<f32> = (0..n * 2).map(|i| 0.3 * i as f32).collect();
        let mut permuted_feats = vec![0.0f32; n * 2];
        for i in 0..n {
            permuted_feats[perm[i] * 2..perm[i] * 2 + 2].copy_from_slice(&feats[i * 2..i * 2 + 2]);
        }

        let run = |edges: &[(usize, usize)], feats: &[f32]| {
            let mut t = Tape::new();
            let adj = t.constant(vec![n, n], normalized_adjacency(n, edges));
            let x = t.constant(vec![n, 2], feats.to_vec());
            let y = gcn.forward(&mut t, &store, adj, x);
            t.value(y).to_vec()
        };

        let out = run(&edges, &feats);
        let out_p = run(&permuted_edges, &permuted_feats);
        for i in 0..n {
            for j in 0..3 {
                let a = out[i * 3 + j];
                let b = out_p[perm[i] * 3 + j];
                assert!((a - b).abs() < 1e-5, "node {i} dim {j}: {a} vs {b}");
            }
        }
    }
}
