//! The Adam optimizer (Kingma & Ba) plus gradient clipping, operating
//! directly on a [`harp_tensor::ParamStore`].

use harp_tensor::ParamStore;

/// Hyperparameters for [`Adam`].
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// L2 weight decay (decoupled, AdamW-style; 0 disables).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

impl AdamConfig {
    /// Default config with the given learning rate.
    pub fn with_lr(lr: f32) -> Self {
        AdamConfig {
            lr,
            ..Default::default()
        }
    }
}

/// Adam optimizer state (first/second moments per parameter scalar).
#[derive(Clone, Debug)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u64,
}

impl Adam {
    /// Create optimizer state matching the store's current layout.
    pub fn new(store: &ParamStore, cfg: AdamConfig) -> Self {
        let m = store
            .ids()
            .map(|id| vec![0.0; store.data(id).len()])
            .collect();
        let v = store
            .ids()
            .map(|id| vec![0.0; store.data(id).len()])
            .collect();
        Adam { cfg, m, v, t: 0 }
    }

    /// The configured learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Override the learning rate (e.g. for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Apply one update using the gradients accumulated in `store`, then
    /// leave gradients untouched (call [`ParamStore::zero_grads`] yourself,
    /// or use [`Adam::step_and_zero`]).
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let b1t = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.cfg.beta2.powi(self.t as i32);
        let ids: Vec<_> = store.ids().collect();
        for (pi, id) in ids.into_iter().enumerate() {
            let g: Vec<f32> = store.grad(id).to_vec();
            let data = store.data_mut(id);
            let m = &mut self.m[pi];
            let v = &mut self.v[pi];
            for i in 0..data.len() {
                let mut gi = g[i];
                if !gi.is_finite() {
                    gi = 0.0; // drop non-finite grads rather than poison state
                }
                m[i] = self.cfg.beta1 * m[i] + (1.0 - self.cfg.beta1) * gi;
                v[i] = self.cfg.beta2 * v[i] + (1.0 - self.cfg.beta2) * gi * gi;
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                let mut upd = self.cfg.lr * mhat / (vhat.sqrt() + self.cfg.eps);
                if self.cfg.weight_decay > 0.0 {
                    upd += self.cfg.lr * self.cfg.weight_decay * data[i];
                }
                data[i] -= upd;
            }
        }
    }

    /// [`Adam::step`] followed by zeroing the gradients.
    pub fn step_and_zero(&mut self, store: &mut ParamStore) {
        self.step(store);
        store.zero_grads();
    }
}

/// Clip gradients to a maximum global L2 norm; returns the pre-clip norm.
pub fn clip_grad_norm(store: &mut ParamStore, max_norm: f32) -> f32 {
    let norm = store.grad_norm();
    if norm.is_finite() && norm > max_norm && norm > 0.0 {
        store.scale_grads(max_norm / norm);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_tensor::Tape;

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize (x - 3)^2 from x = 0
        let mut store = ParamStore::new();
        let x = store.register("x", vec![1], vec![0.0]);
        let mut opt = Adam::new(&store, AdamConfig::with_lr(0.1));
        for _ in 0..300 {
            let mut t = Tape::new();
            let xv = t.param(&store, x);
            let c = t.constant(vec![1], vec![3.0]);
            let d = t.sub(xv, c);
            let l = t.mul(d, d);
            store.zero_grads();
            t.backward(l, &mut store);
            opt.step_and_zero(&mut store);
        }
        assert!(
            (store.data(x)[0] - 3.0).abs() < 1e-2,
            "x = {}",
            store.data(x)[0]
        );
    }

    #[test]
    fn clip_caps_norm() {
        let mut store = ParamStore::new();
        let x = store.register("x", vec![2], vec![0.0, 0.0]);
        store.grad_mut(x).copy_from_slice(&[3.0, 4.0]);
        let pre = clip_grad_norm(&mut store, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn nonfinite_grads_are_dropped() {
        let mut store = ParamStore::new();
        let x = store.register("x", vec![1], vec![1.0]);
        store.grad_mut(x)[0] = f32::NAN;
        let mut opt = Adam::new(&store, AdamConfig::default());
        opt.step(&mut store);
        assert!(store.data(x)[0].is_finite());
    }
}
