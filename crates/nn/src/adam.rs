//! The Adam optimizer (Kingma & Ba) plus gradient clipping, operating
//! directly on a [`harp_tensor::ParamStore`].

use harp_tensor::ParamStore;

/// Hyperparameters for [`Adam`].
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// L2 weight decay (decoupled, AdamW-style; 0 disables).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

impl AdamConfig {
    /// Default config with the given learning rate.
    pub fn with_lr(lr: f32) -> Self {
        AdamConfig {
            lr,
            ..Default::default()
        }
    }
}

/// Adam optimizer state (first/second moments per parameter scalar).
#[derive(Clone, Debug)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u64,
}

/// A portable copy of an [`Adam`]'s mutable state, for training snapshots.
/// Capture with [`Adam::export_state`], revive with [`Adam::import_state`].
#[derive(Clone, Debug, PartialEq)]
pub struct AdamState {
    /// First moments, one buffer per parameter in store order.
    pub m: Vec<Vec<f32>>,
    /// Second moments, one buffer per parameter in store order.
    pub v: Vec<Vec<f32>>,
    /// Number of optimizer steps taken.
    pub t: u64,
    /// Learning rate at capture time (schedules/rollbacks mutate it).
    pub lr: f32,
}

/// Why an [`AdamState`] could not be imported into an optimizer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdamStateMismatch {
    /// Which part of the state disagreed with the store layout.
    pub detail: String,
}

impl std::fmt::Display for AdamStateMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "optimizer state mismatch: {}", self.detail)
    }
}

impl std::error::Error for AdamStateMismatch {}

impl Adam {
    /// Create optimizer state matching the store's current layout.
    pub fn new(store: &ParamStore, cfg: AdamConfig) -> Self {
        let m = store
            .ids()
            .map(|id| vec![0.0; store.data(id).len()])
            .collect();
        let v = store
            .ids()
            .map(|id| vec![0.0; store.data(id).len()])
            .collect();
        Adam { cfg, m, v, t: 0 }
    }

    /// The configured learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Override the learning rate (e.g. for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Copy out the mutable state (moments, step count, learning rate) for
    /// a training snapshot.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t,
            lr: self.cfg.lr,
        }
    }

    /// Replace this optimizer's mutable state with a previously exported
    /// one. Rejects (leaving `self` untouched) when the moment layout does
    /// not match the optimizer's, naming the offending buffer — an
    /// optimizer-state snapshot from a different architecture must fail
    /// loudly instead of silently mis-applying moments.
    pub fn import_state(&mut self, state: &AdamState) -> Result<(), AdamStateMismatch> {
        if state.m.len() != self.m.len() || state.v.len() != self.v.len() {
            return Err(AdamStateMismatch {
                detail: format!(
                    "snapshot has {} first-moment / {} second-moment buffers, optimizer has {}",
                    state.m.len(),
                    state.v.len(),
                    self.m.len()
                ),
            });
        }
        for (i, (ours, theirs)) in self.m.iter().zip(&state.m).enumerate() {
            if ours.len() != theirs.len() {
                return Err(AdamStateMismatch {
                    detail: format!(
                        "first-moment buffer {i}: snapshot has {} values, optimizer has {}",
                        theirs.len(),
                        ours.len()
                    ),
                });
            }
        }
        for (i, (ours, theirs)) in self.v.iter().zip(&state.v).enumerate() {
            if ours.len() != theirs.len() {
                return Err(AdamStateMismatch {
                    detail: format!(
                        "second-moment buffer {i}: snapshot has {} values, optimizer has {}",
                        theirs.len(),
                        ours.len()
                    ),
                });
            }
        }
        self.m = state.m.clone();
        self.v = state.v.clone();
        self.t = state.t;
        self.cfg.lr = state.lr;
        Ok(())
    }

    /// Apply one update using the gradients accumulated in `store`, then
    /// leave gradients untouched (call [`ParamStore::zero_grads`] yourself,
    /// or use [`Adam::step_and_zero`]).
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        // lint: allow(as-cast) — powi takes i32; step counts stay far below i32::MAX
        let b1t = 1.0 - self.cfg.beta1.powi(self.t as i32);
        // lint: allow(as-cast) — powi takes i32; step counts stay far below i32::MAX
        let b2t = 1.0 - self.cfg.beta2.powi(self.t as i32);
        let ids: Vec<_> = store.ids().collect();
        for (pi, id) in ids.into_iter().enumerate() {
            let g: Vec<f32> = store.grad(id).to_vec();
            let data = store.data_mut(id);
            let m = &mut self.m[pi];
            let v = &mut self.v[pi];
            for i in 0..data.len() {
                let mut gi = g[i];
                if !gi.is_finite() {
                    gi = 0.0; // drop non-finite grads rather than poison state
                }
                m[i] = self.cfg.beta1 * m[i] + (1.0 - self.cfg.beta1) * gi;
                v[i] = self.cfg.beta2 * v[i] + (1.0 - self.cfg.beta2) * gi * gi;
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                let mut upd = self.cfg.lr * mhat / (vhat.sqrt() + self.cfg.eps);
                if self.cfg.weight_decay > 0.0 {
                    upd += self.cfg.lr * self.cfg.weight_decay * data[i];
                }
                data[i] -= upd;
            }
        }
    }

    /// [`Adam::step`] followed by zeroing the gradients.
    pub fn step_and_zero(&mut self, store: &mut ParamStore) {
        self.step(store);
        store.zero_grads();
    }
}

/// The global gradient norm was NaN or infinite — at least one gradient is
/// poisoned, and scaling would smear the poison across every parameter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NonFiniteGradNorm {
    /// The offending norm (NaN, or +inf when a square overflowed).
    pub norm: f32,
}

impl std::fmt::Display for NonFiniteGradNorm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gradient norm is {} — gradients are poisoned (diverged loss or overflow)",
            self.norm
        )
    }
}

impl std::error::Error for NonFiniteGradNorm {}

/// Clip gradients to a maximum global L2 norm; returns the pre-clip norm.
///
/// A NaN/inf norm means the gradients already carry non-finite values;
/// clipping cannot repair that, so instead of silently passing poison on to
/// the optimizer this returns [`NonFiniteGradNorm`] and leaves the
/// gradients untouched for the caller's divergence handling (roll back,
/// shrink the learning rate, or abort). An empty store has norm `0.0` and
/// is trivially `Ok`.
pub fn clip_grad_norm(store: &mut ParamStore, max_norm: f32) -> Result<f32, NonFiniteGradNorm> {
    let norm = store.grad_norm();
    if !norm.is_finite() {
        return Err(NonFiniteGradNorm { norm });
    }
    if norm > max_norm && norm > 0.0 {
        store.scale_grads(max_norm / norm);
    }
    Ok(norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_tensor::Tape;

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize (x - 3)^2 from x = 0
        let mut store = ParamStore::new();
        let x = store.register("x", vec![1], vec![0.0]);
        let mut opt = Adam::new(&store, AdamConfig::with_lr(0.1));
        for _ in 0..300 {
            let mut t = Tape::new();
            let xv = t.param(&store, x);
            let c = t.constant(vec![1], vec![3.0]);
            let d = t.sub(xv, c);
            let l = t.mul(d, d);
            store.zero_grads();
            t.backward(l, &mut store);
            opt.step_and_zero(&mut store);
        }
        assert!(
            (store.data(x)[0] - 3.0).abs() < 1e-2,
            "x = {}",
            store.data(x)[0]
        );
    }

    #[test]
    fn clip_caps_norm() {
        let mut store = ParamStore::new();
        let x = store.register("x", vec![2], vec![0.0, 0.0]);
        store.grad_mut(x).copy_from_slice(&[3.0, 4.0]);
        let pre = clip_grad_norm(&mut store, 1.0).expect("finite grads");
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_rejects_all_nan_grads() {
        let mut store = ParamStore::new();
        let x = store.register("x", vec![3], vec![0.0; 3]);
        store.grad_mut(x).copy_from_slice(&[f32::NAN; 3]);
        let err = clip_grad_norm(&mut store, 1.0).expect_err("all-NaN grads must be rejected");
        assert!(err.norm.is_nan(), "norm should be NaN: {err}");
        // grads are left untouched for the caller's rollback logic
        assert!(store.grad(x).iter().all(|g| g.is_nan()));
    }

    #[test]
    fn clip_rejects_single_inf_grad() {
        let mut store = ParamStore::new();
        let x = store.register("x", vec![3], vec![0.0; 3]);
        store
            .grad_mut(x)
            .copy_from_slice(&[1.0, f32::INFINITY, 2.0]);
        let err = clip_grad_norm(&mut store, 1.0).expect_err("an inf grad must be rejected");
        assert!(!err.norm.is_finite(), "norm should be non-finite: {err}");
    }

    #[test]
    fn clip_on_empty_store_is_ok_zero() {
        let mut store = ParamStore::new();
        assert_eq!(clip_grad_norm(&mut store, 1.0), Ok(0.0));
    }

    #[test]
    fn adam_state_roundtrips_bitwise() {
        let mut store = ParamStore::new();
        let x = store.register("x", vec![2], vec![1.0, 2.0]);
        let mut opt = Adam::new(&store, AdamConfig::with_lr(0.05));
        store.grad_mut(x).copy_from_slice(&[0.5, -0.5]);
        opt.step(&mut store);
        let state = opt.export_state();
        assert_eq!(state.t, 1);
        assert_eq!(state.lr, 0.05);

        // a fresh optimizer revived from the state continues identically
        let params_after_one = store.data(x).to_vec();
        store.grad_mut(x).copy_from_slice(&[0.25, 0.75]);
        opt.step(&mut store);
        let reference = store.data(x).to_vec();

        store.data_mut(x).copy_from_slice(&params_after_one);
        let mut revived = Adam::new(&store, AdamConfig::with_lr(999.0));
        revived.import_state(&state).expect("layout matches");
        assert_eq!(revived.lr(), 0.05, "import restores the learning rate");
        store.grad_mut(x).copy_from_slice(&[0.25, 0.75]);
        revived.step(&mut store);
        for (a, b) in store.data(x).iter().zip(&reference) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "revived step must be bitwise equal"
            );
        }
    }

    #[test]
    fn adam_state_import_rejects_mismatched_layout_naming_buffer() {
        let mut store = ParamStore::new();
        let _ = store.register("x", vec![2], vec![0.0; 2]);
        let opt = Adam::new(&store, AdamConfig::default());
        let mut state = opt.export_state();
        state.m[0].push(0.0); // wrong width

        let mut other = Adam::new(&store, AdamConfig::default());
        let err = other.import_state(&state).expect_err("layout mismatch");
        assert!(
            err.to_string().contains("first-moment buffer 0"),
            "error must name the offending buffer: {err}"
        );

        // a state captured against a narrower parameter is also rejected
        let narrow_store = {
            let mut s = ParamStore::new();
            let _ = s.register("x", vec![1], vec![0.0]);
            s
        };
        let mut narrow = Adam::new(&narrow_store, AdamConfig::default());
        let full = opt.export_state();
        let err = narrow
            .import_state(&full)
            .expect_err("wider snapshot into narrower optimizer must fail");
        assert!(
            err.to_string().contains("buffer 0"),
            "error must name the offending buffer: {err}"
        );
    }

    #[test]
    fn nonfinite_grads_are_dropped() {
        let mut store = ParamStore::new();
        let x = store.register("x", vec![1], vec![1.0]);
        store.grad_mut(x)[0] = f32::NAN;
        let mut opt = Adam::new(&store, AdamConfig::default());
        opt.step(&mut store);
        assert!(store.data(x)[0].is_finite());
    }
}
