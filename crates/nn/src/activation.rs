//! Activation functions as a small enum applied through the tape.

use harp_tensor::{Tape, Var};

/// Nonlinearity choices for [`crate::Mlp`] and friends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Activation {
    /// Identity (no nonlinearity).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// Exponential linear unit with the given alpha.
    Elu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Apply this activation to `x` on `tape`.
    pub fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Identity => x,
            Activation::Relu => tape.relu(x),
            Activation::LeakyRelu(a) => tape.leaky_relu(x, a),
            Activation::Elu(a) => tape.elu(x, a),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_matches_tape_ops() {
        let mut t = Tape::new();
        let x = t.constant(vec![3], vec![-1.0, 0.0, 2.0]);
        let y = Activation::Relu.apply(&mut t, x);
        assert_eq!(t.value(y), &[0.0, 0.0, 2.0]);
        let y = Activation::LeakyRelu(0.5).apply(&mut t, x);
        assert_eq!(t.value(y), &[-0.5, 0.0, 2.0]);
        let y = Activation::Identity.apply(&mut t, x);
        assert_eq!(y, x);
    }
}
