//! Multi-head scaled-dot-product attention **without positional encoding**.
//!
//! The paper implements SETTRANS as "a standard transformer without
//! positional encodings" (§4): with no position information, the encoder is
//! permutation-equivariant over the set of edges in a tunnel, which is
//! exactly HARP design Principle 1(c).

use std::sync::Arc;

use harp_tensor::{ParamStore, Tape, Var};
use rand::Rng;

use crate::Linear;

/// Expand a key-padding mask `[t, s]` (1 = valid, 0 = padding) into the
/// full attention-score mask `[t, s, s]`: query `i` of batch `t` may attend
/// key `j` iff `key_mask[t, j] == 1`.
pub fn expand_key_mask(key_mask: &[f32], t: usize, s: usize) -> Vec<f32> {
    assert_eq!(key_mask.len(), t * s, "key mask size");
    let mut full = vec![0.0f32; t * s * s];
    for b in 0..t {
        let krow = &key_mask[b * s..(b + 1) * s];
        for i in 0..s {
            full[b * s * s + i * s..b * s * s + (i + 1) * s].copy_from_slice(krow);
        }
    }
    full
}

/// Multi-head self-attention over `[batch, seq, d_model]`.
#[derive(Clone, Debug)]
pub struct MultiHeadAttention {
    heads: Vec<(Linear, Linear, Linear)>,
    proj: Linear,
    d_model: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Create attention with `n_heads` heads over width `d_model`
    /// (`d_model` must be divisible by `n_heads`).
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        d_model: usize,
        n_heads: usize,
    ) -> Self {
        assert!(
            n_heads > 0 && d_model.is_multiple_of(n_heads),
            "d_model % n_heads"
        );
        let head_dim = d_model / n_heads;
        let heads = (0..n_heads)
            .map(|h| {
                (
                    Linear::new(
                        store,
                        rng,
                        &format!("{name}.h{h}.q"),
                        d_model,
                        head_dim,
                        false,
                    ),
                    Linear::new(
                        store,
                        rng,
                        &format!("{name}.h{h}.k"),
                        d_model,
                        head_dim,
                        false,
                    ),
                    Linear::new(
                        store,
                        rng,
                        &format!("{name}.h{h}.v"),
                        d_model,
                        head_dim,
                        false,
                    ),
                )
            })
            .collect();
        let proj = Linear::new(store, rng, &format!("{name}.o"), d_model, d_model, true);
        MultiHeadAttention {
            heads,
            proj,
            d_model,
            head_dim,
        }
    }

    /// Apply self-attention. `x` is `[batch, seq, d_model]`; `score_mask`
    /// (if given) is a full `[batch, seq, seq]` mask from
    /// [`expand_key_mask`].
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        score_mask: Option<Arc<Vec<f32>>>,
    ) -> Var {
        let (b, s, d) = tape.shape(x).as_batched();
        assert_eq!(d, self.d_model, "attention: feature width mismatch");
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut outs = Vec::with_capacity(self.heads.len());
        for (wq, wk, wv) in &self.heads {
            let q = wq.forward(tape, store, x);
            let k = wk.forward(tape, store, x);
            let v = wv.forward(tape, store, x);
            let kt = tape.transpose_last2(k);
            let scores = tape.batch_matmul(q, kt);
            let scores = tape.mul_scalar(scores, scale);
            let att = tape.softmax_last_dim(scores, score_mask.clone());
            let out = tape.batch_matmul(att, v); // [b, s, head_dim]
            let out2 = tape.reshape(out, vec![b * s, self.head_dim]);
            outs.push(out2);
        }
        let cat = if outs.len() == 1 {
            outs[0]
        } else {
            tape.concat_cols(&outs)
        };
        let cat3 = tape.reshape(cat, vec![b, s, self.d_model]);
        self.proj.forward(tape, store, cat3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn run_attention(
        mha: &MultiHeadAttention,
        store: &ParamStore,
        b: usize,
        s: usize,
        d: usize,
        data: Vec<f32>,
        mask: Option<Arc<Vec<f32>>>,
    ) -> Vec<f32> {
        let mut t = Tape::new();
        let x = t.constant(vec![b, s, d], data);
        let y = mha.forward(&mut t, store, x, mask);
        t.value(y).to_vec()
    }

    #[test]
    fn permutation_equivariant_over_sequence() {
        // Principle 1(c): reordering the edges in a tunnel permutes the
        // per-edge outputs and leaves values unchanged.
        let (b, s, d) = (1usize, 4usize, 8usize);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "a", d, 2);

        let data: Vec<f32> = (0..b * s * d)
            .map(|i| ((i * 7) % 13) as f32 * 0.1)
            .collect();
        let perm = [3usize, 1, 0, 2];
        let mut pdata = vec![0.0f32; data.len()];
        for i in 0..s {
            pdata[perm[i] * d..(perm[i] + 1) * d].copy_from_slice(&data[i * d..(i + 1) * d]);
        }

        let y = run_attention(&mha, &store, b, s, d, data, None);
        let yp = run_attention(&mha, &store, b, s, d, pdata, None);
        for i in 0..s {
            for j in 0..d {
                let a = y[i * d + j];
                let bb = yp[perm[i] * d + j];
                assert!((a - bb).abs() < 1e-4, "pos {i} dim {j}: {a} vs {bb}");
            }
        }
    }

    #[test]
    fn padding_does_not_change_valid_outputs() {
        // Masked (padding) keys must not influence valid positions: a
        // length-2 sequence equals the first 2 rows of a padded length-4
        // sequence with key mask [1,1,0,0].
        let (d, s) = (8usize, 4usize);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "a", d, 1);

        let real: Vec<f32> = (0..2 * d).map(|i| (i as f32 * 0.07).sin()).collect();
        let mut padded = real.clone();
        padded.extend(vec![9.9f32; 2 * d]); // garbage padding rows

        let y_small = run_attention(&mha, &store, 1, 2, d, real, None);
        let mask = Arc::new(expand_key_mask(&[1.0, 1.0, 0.0, 0.0], 1, s));
        let y_pad = run_attention(&mha, &store, 1, s, d, padded, Some(mask));
        for i in 0..2 * d {
            assert!(
                (y_small[i] - y_pad[i]).abs() < 1e-4,
                "elem {i}: {} vs {}",
                y_small[i],
                y_pad[i]
            );
        }
    }

    #[test]
    fn expand_key_mask_layout() {
        let full = expand_key_mask(&[1.0, 0.0, 1.0, 1.0], 2, 2);
        assert_eq!(full, vec![1., 0., 1., 0., 1., 1., 1., 1.]);
    }
}
