//! Weight initialization (Xavier/Glorot and He), seeded and deterministic.

use rand::Rng;

/// Xavier/Glorot uniform initialization for a `fan_in x fan_out` weight:
/// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_vec<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Vec<f32> {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-a..=a))
        .collect()
}

/// He (Kaiming) uniform initialization suited to ReLU-family activations:
/// `U(-a, a)` with `a = sqrt(6 / fan_in)`.
pub fn he_vec<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Vec<f32> {
    let a = (6.0 / fan_in as f32).sqrt();
    (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-a..=a))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn xavier_within_bound_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let v1 = xavier_vec(&mut r1, 16, 8);
        let v2 = xavier_vec(&mut r2, 16, 8);
        assert_eq!(v1, v2);
        let a = (6.0f32 / 24.0).sqrt();
        assert!(v1.iter().all(|x| x.abs() <= a));
        assert_eq!(v1.len(), 128);
    }

    #[test]
    fn he_nonzero_spread() {
        let mut r = StdRng::seed_from_u64(3);
        let v = he_vec(&mut r, 10, 10);
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.3);
        assert!(v.iter().any(|x| x.abs() > 0.1));
    }
}
