//! Layer normalization with a learnable affine transform.

use harp_tensor::{ParamId, ParamStore, Tape, Var};

/// `y = gamma * LN(x) + beta` over the last axis.
#[derive(Clone, Debug)]
pub struct LayerNormAffine {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNormAffine {
    /// Create a layer norm over feature width `dim` (gamma=1, beta=0).
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.register(&format!("{name}.gamma"), vec![dim], vec![1.0; dim]);
        let beta = store.register(&format!("{name}.beta"), vec![dim], vec![0.0; dim]);
        LayerNormAffine {
            gamma,
            beta,
            dim,
            eps: 1e-5,
        }
    }

    /// Apply to any tensor whose last dimension equals `dim`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        assert_eq!(
            tape.shape(x).last_dim(),
            self.dim,
            "layer norm: feature width mismatch"
        );
        let n = tape.layer_norm(x, self.eps);
        let g = tape.param(store, self.gamma);
        let b = tape.param(store, self.beta);
        let scaled = tape.mul_row(n, g);
        tape.add_bias(scaled, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_affine_is_plain_layernorm() {
        let mut store = ParamStore::new();
        let ln = LayerNormAffine::new(&mut store, "ln", 4);
        let mut t = Tape::new();
        let x = t.constant(vec![2, 4], vec![1., 2., 3., 4., -1., 0., 1., 2.]);
        let y = ln.forward(&mut t, &store, x);
        let plain = t.layer_norm(x, 1e-5);
        assert_eq!(t.value(y), t.value(plain));
    }
}
