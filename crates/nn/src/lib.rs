//! # harp-nn
//!
//! Neural-network building blocks on top of [`harp_tensor`]: linear layers,
//! MLPs, graph convolutions (GCN), multi-head attention, transformer
//! encoders (the paper's SETTRANS), layer norm, parameter initialization,
//! the Adam optimizer, and parameter (de)serialization.
//!
//! Layers own [`harp_tensor::ParamId`]s into a shared
//! [`harp_tensor::ParamStore`]; their `forward` methods record operations on
//! a caller-provided [`harp_tensor::Tape`]. This mirrors the
//! "module = parameter bundle + pure forward function" style so one set of
//! weights can be applied repeatedly (HARP applies the *same* RAU and
//! SETTRANS modules at every recursion/tunnel — parameter sharing is the
//! core of its invariance story).

mod activation;
mod adam;
mod attention;
mod gcn;
mod init;
mod linear;
mod mlp;
mod norm;
mod serialize;
mod transformer;

pub use activation::Activation;
pub use adam::{clip_grad_norm, Adam, AdamConfig, AdamState, AdamStateMismatch, NonFiniteGradNorm};
pub use attention::{expand_key_mask, MultiHeadAttention};
pub use gcn::{normalized_adjacency, GcnConv};
pub use init::{he_vec, xavier_vec};
pub use linear::Linear;
pub use mlp::Mlp;
pub use norm::LayerNormAffine;
pub use serialize::{
    load_params, load_snapshot, save_params, save_snapshot, SnapshotEpoch, TrainSnapshot,
    SNAPSHOT_FORMAT_VERSION,
};
pub use transformer::{TransformerEncoder, TransformerEncoderLayer};
