//! Fully-connected (affine) layer.

use harp_tensor::{ParamId, ParamStore, Tape, Var};
use rand::Rng;

use crate::init::xavier_vec;
use crate::Activation;

/// `y = x W + b` over the rows of `x` (`x: [n, in]`, `y: [n, out]`).
///
/// Rank-3 inputs `[b, s, in]` are supported transparently (flattened to
/// rows, matmul, reshaped back) — this is how per-tunnel weights are shared
/// across all tunnels and sequence positions.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create a layer with Xavier-initialized weights and zero bias.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.register(
            &format!("{name}.w"),
            vec![in_dim, out_dim],
            xavier_vec(rng, in_dim, out_dim),
        );
        let b =
            bias.then(|| store.register(&format!("{name}.b"), vec![out_dim], vec![0.0; out_dim]));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Apply the layer. Accepts rank-2 `[n, in]` or rank-3 `[b, s, in]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        self.forward_act(tape, store, x, Activation::Identity)
    }

    /// Apply the layer followed by `act`.
    ///
    /// This is the fusion peephole: when the layer has a bias and `act` is
    /// `Relu` or `LeakyRelu` with a positive slope, the whole
    /// `matmul -> add_bias -> activation` chain is emitted as a single fused
    /// tape op (one kernel pass, no intermediate buffers). Any other
    /// combination falls back to the unfused ops; both routes produce
    /// bitwise-identical values and gradients.
    pub fn forward_act(&self, tape: &mut Tape, store: &ParamStore, x: Var, act: Activation) -> Var {
        let shape = tape.shape(x).0.clone();
        let last = *shape.last().expect("linear: input must have rank >= 1");
        assert_eq!(
            last, self.in_dim,
            "linear: input feature dim {} != layer in_dim {}",
            last, self.in_dim
        );
        let rows: usize = shape[..shape.len() - 1].iter().product::<usize>().max(1);
        let x2 = if shape.len() == 2 {
            x
        } else {
            tape.reshape(x, vec![rows, self.in_dim])
        };
        let w = tape.param(store, self.w);
        let fuse = match (self.b, act) {
            (Some(b), Activation::Relu) => Some((b, None)),
            (Some(b), Activation::LeakyRelu(a)) if a > 0.0 => Some((b, Some(a))),
            _ => None,
        };
        let y = match fuse {
            Some((b, alpha)) => {
                let bv = tape.param(store, b);
                match alpha {
                    None => tape.matmul_bias_relu(x2, w, bv),
                    Some(a) => tape.matmul_bias_leaky_relu(x2, w, bv, a),
                }
            }
            None => {
                let mut y = tape.matmul(x2, w);
                if let Some(b) = self.b {
                    let bv = tape.param(store, b);
                    y = tape.add_bias(y, bv);
                }
                act.apply(tape, y)
            }
        };
        if shape.len() == 2 {
            y
        } else {
            let mut out_shape = shape;
            *out_shape.last_mut().expect("rank >= 1 input") = self.out_dim;
            tape.reshape(y, out_shape)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_shapes_rank2_and_rank3() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 3, true);
        let mut t = Tape::new();
        let x2 = t.constant(vec![5, 4], vec![0.1; 20]);
        let y2 = lin.forward(&mut t, &store, x2);
        assert_eq!(t.shape(y2).as_matrix(), (5, 3));
        let x3 = t.constant(vec![2, 5, 4], vec![0.1; 40]);
        let y3 = lin.forward(&mut t, &store, x3);
        assert_eq!(t.shape(y3).as_batched(), (2, 5, 3));
        // rank-3 rows equal the rank-2 result row-wise
        assert_eq!(t.value(y3)[..15], t.value(y2)[..15]);
    }

    #[test]
    fn trains_toward_target() {
        // One gradient step reduces a simple quadratic loss.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::new(&mut store, &mut rng, "l", 2, 1, true);
        let loss_at = |store: &ParamStore| {
            let mut t = Tape::new();
            let x = t.constant(vec![1, 2], vec![1.0, -1.0]);
            let y = lin.forward(&mut t, store, x);
            let target = t.constant(vec![1, 1], vec![2.0]);
            let d = t.sub(y, target);
            let sq = t.mul(d, d);
            let l = t.sum_all(sq);
            (t, l)
        };
        let (t, l) = loss_at(&store);
        let before = t.scalar_value(l);
        store.zero_grads();
        t.backward(l, &mut store);
        for id in store.ids().collect::<Vec<_>>() {
            let g: Vec<f32> = store.grad(id).to_vec();
            for (d, gi) in store.data_mut(id).iter_mut().zip(g) {
                *d -= 0.05 * gi;
            }
        }
        let (t, l) = loss_at(&store);
        assert!(t.scalar_value(l) < before);
    }
}
