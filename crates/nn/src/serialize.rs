//! Parameter (de)serialization: checkpoints as a JSON name→(shape, data)
//! map, so trained models survive process restarts and can be shipped with
//! experiment results.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use harp_tensor::ParamStore;
use serde_json::{FromJson, ToJson, Value};

struct SavedParam {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl ToJson for SavedParam {
    fn to_json(&self) -> Value {
        serde_json::json!({
            "shape": self.shape.to_json(),
            "data": self.data.to_json(),
        })
    }
}

impl FromJson for SavedParam {
    fn from_json(v: &Value) -> Option<Self> {
        Some(SavedParam {
            shape: Vec::from_json(v.get("shape")?)?,
            data: Vec::from_json(v.get("data")?)?,
        })
    }
}

/// Write every parameter in `store` to `path` as JSON.
pub fn save_params(store: &ParamStore, path: &Path) -> io::Result<()> {
    let mut map = BTreeMap::new();
    for id in store.ids() {
        map.insert(
            store.name(id).to_string(),
            SavedParam {
                shape: store.shape(id).0.clone(),
                data: store.data(id).to_vec(),
            },
        );
    }
    let json = serde_json::to_string(&map).map_err(io::Error::other)?;
    fs::write(path, json)
}

/// Load parameter values saved with [`save_params`] into a store whose
/// registered names/shapes must match (the model must be constructed with
/// the same architecture and names first).
pub fn load_params(store: &mut ParamStore, path: &Path) -> io::Result<()> {
    let json = fs::read_to_string(path)?;
    let map: BTreeMap<String, SavedParam> =
        serde_json::from_str(&json).map_err(io::Error::other)?;
    let ids: Vec<_> = store.ids().collect();
    for id in ids {
        let name = store.name(id).to_string();
        let saved = map.get(&name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint missing parameter '{name}'"),
            )
        })?;
        if saved.shape != store.shape(id).0 || saved.data.len() != store.data(id).len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint shape mismatch for '{name}'"),
            ));
        }
        store.data_mut(id).copy_from_slice(&saved.data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("harp_nn_serialize_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");

        let mut store = ParamStore::new();
        let a = store.register("a", vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = store.register("b", vec![3], vec![5.0, 6.0, 7.0]);
        save_params(&store, &path).unwrap();

        store.data_mut(a).copy_from_slice(&[0.0; 4]);
        store.data_mut(b).copy_from_slice(&[0.0; 3]);
        load_params(&mut store, &path).unwrap();
        assert_eq!(store.data(a), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(store.data(b), &[5.0, 6.0, 7.0]);
    }

    #[test]
    fn missing_param_is_error() {
        let dir = std::env::temp_dir().join("harp_nn_serialize_test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");

        let mut small = ParamStore::new();
        let _ = small.register("a", vec![1], vec![1.0]);
        save_params(&small, &path).unwrap();

        let mut bigger = ParamStore::new();
        let _ = bigger.register("a", vec![1], vec![0.0]);
        let _ = bigger.register("extra", vec![1], vec![0.0]);
        assert!(load_params(&mut bigger, &path).is_err());
    }
}
