//! Parameter and training-state (de)serialization.
//!
//! Two on-disk artifacts:
//!
//! * **parameter checkpoints** ([`save_params`]/[`load_params`]) — a JSON
//!   name→(shape, data) map of the model weights only; what the serving
//!   layer hot-reloads and experiment results ship with.
//! * **training snapshots** ([`save_snapshot`]/[`load_snapshot`]) — a
//!   versioned superset adding optimizer moments, RNG state, and
//!   early-stop bookkeeping, so an interrupted `train_model` run resumes
//!   **bitwise-identically** (see DESIGN.md §10). Every float survives the
//!   JSON round-trip exactly: `f32`/`f64` print in Rust's shortest-exact
//!   form, and full-range `u64` RNG words are hex strings (JSON numbers
//!   are f64-backed and would silently lose bits past 2^53).
//!
//! Both writers are **crash-safe** (unique temp file + `rename` in the
//! target directory) and both loaders validate the entire artifact against
//! the live model before mutating anything, failing with errors that name
//! the offending field.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use harp_chaos::FaultPlan;
use harp_tensor::ParamStore;
use serde_json::{FromJson, ToJson, Value};

use crate::adam::AdamState;

struct SavedParam {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl ToJson for SavedParam {
    fn to_json(&self) -> Value {
        serde_json::json!({
            "shape": self.shape.to_json(),
            "data": self.data.to_json(),
        })
    }
}

impl FromJson for SavedParam {
    fn from_json(v: &Value) -> Option<Self> {
        Some(SavedParam {
            shape: Vec::from_json(v.get("shape")?)?,
            data: Vec::from_json(v.get("data")?)?,
        })
    }
}

/// Monotonic discriminator for temp-file names, so concurrent saves in one
/// process never collide on the same scratch path.
static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Write `bytes` to `path` atomically: a uniquely-named temp file in the
/// same directory (rename(2) is only atomic within one filesystem) is
/// written first and then `rename`d into place. A process killed mid-save
/// can leave a stray `*.tmp-*` behind, but `path` itself only ever holds
/// either the previous complete artifact or the new complete one.
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("checkpoint path {} has no file name", path.display()),
        )
    })?;
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp-{}-{seq}", std::process::id()));
    let tmp_path = path.with_file_name(tmp_name);

    fs::write(&tmp_path, bytes)?;
    fs::rename(&tmp_path, path).inspect_err(|_| {
        // rename failed: don't leave the scratch file around
        let _ = fs::remove_file(&tmp_path);
    })
}

fn params_to_json(store: &ParamStore) -> Result<Value, io::Error> {
    let mut map = BTreeMap::new();
    for id in store.ids() {
        map.insert(
            store.name(id).to_string(),
            SavedParam {
                shape: store.shape(id).0.clone(),
                data: store.data(id).to_vec(),
            },
        );
    }
    Ok(map.to_json())
}

/// Write every parameter in `store` to `path` as JSON, crash-safely (see
/// [`atomic_write`]): a hot-reloading server can never observe a truncated
/// checkpoint.
pub fn save_params(store: &ParamStore, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string(&params_to_json(store)?).map_err(io::Error::other)?;
    atomic_write(path, json.as_bytes())
}

/// Validate a parsed name→[`SavedParam`] map against the store's
/// registered layout: every registered parameter present with the right
/// shape, and nothing extra. Errors name every offending parameter.
fn validate_params(
    store: &ParamStore,
    map: &BTreeMap<String, SavedParam>,
    path: &Path,
) -> io::Result<()> {
    let ids: Vec<_> = store.ids().collect();
    for &id in &ids {
        let name = store.name(id);
        let saved = map.get(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint missing parameter '{name}'"),
            )
        })?;
        if saved.shape != store.shape(id).0 || saved.data.len() != store.data(id).len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint shape mismatch for '{name}': checkpoint {:?} ({} values) vs model {:?} ({} values)",
                    saved.shape,
                    saved.data.len(),
                    store.shape(id).0,
                    store.data(id).len()
                ),
            ));
        }
    }
    let known: std::collections::BTreeSet<&str> = ids.iter().map(|&id| store.name(id)).collect();
    let unexpected: Vec<&str> = map
        .keys()
        .map(String::as_str)
        .filter(|k| !known.contains(k))
        .collect();
    if !unexpected.is_empty() {
        harp_obs::event("checkpoint.unexpected_params")
            .field("path", path.display().to_string())
            .field("count", unexpected.len())
            .field_with("names", || unexpected.join(", ").into())
            .emit();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint contains {} parameter(s) not registered in the model \
                 (architecture mismatch?): {}",
                unexpected.len(),
                unexpected.join(", ")
            ),
        ));
    }
    Ok(())
}

/// Copy validated parameter values into the store. Call only after
/// [`validate_params`] passed.
fn apply_params(store: &mut ParamStore, map: &BTreeMap<String, SavedParam>) {
    let ids: Vec<_> = store.ids().collect();
    for id in ids {
        let name = store.name(id).to_string();
        let saved = map
            .get(name.as_str())
            .expect("validated above: every registered parameter is present");
        store.data_mut(id).copy_from_slice(&saved.data);
    }
}

/// Load parameter values saved with [`save_params`] into a store whose
/// registered names/shapes must match exactly (the model must be
/// constructed with the same architecture and names first).
///
/// Rejects with [`io::ErrorKind::InvalidData`] when the checkpoint is
/// missing a registered parameter, disagrees on a shape, **or contains
/// parameters the store does not register** — a checkpoint from a
/// different architecture must fail loudly instead of half-succeeding.
/// The error message names every offending parameter. The store is not
/// modified unless validation of the whole checkpoint passes.
pub fn load_params(store: &mut ParamStore, path: &Path) -> io::Result<()> {
    let json = fs::read_to_string(path)?;
    let map: BTreeMap<String, SavedParam> =
        serde_json::from_str(&json).map_err(io::Error::other)?;
    validate_params(store, &map, path)?;
    apply_params(store, &map);
    Ok(())
}

// ---------------------------------------------------------------------------
// Full training snapshots
// ---------------------------------------------------------------------------

/// Version tag of the on-disk training-snapshot format. Bumped on any
/// incompatible layout change; [`load_snapshot`] rejects other versions by
/// name rather than guessing.
pub const SNAPSHOT_FORMAT_VERSION: u64 = 1;

/// One epoch's statistics as persisted in a snapshot (a dependency-free
/// mirror of `harp_core::EpochStats`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotEpoch {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean (normalized) training loss.
    pub train_loss: f64,
    /// Mean validation NormMLU.
    pub val_norm_mlu: f64,
}

/// Everything `train_model` needs to resume bitwise-identically, minus the
/// current parameter values (those live in the [`ParamStore`] the snapshot
/// is saved from / loaded into).
#[derive(Clone, Debug)]
pub struct TrainSnapshot {
    /// Optimizer moments, step count, and current learning rate.
    pub adam: AdamState,
    /// Shuffling-RNG state at the epoch boundary.
    pub rng_state: [u64; 4],
    /// First epoch the resumed run should execute.
    pub next_epoch: usize,
    /// Best validation epoch so far.
    pub best_epoch: usize,
    /// Best validation NormMLU so far.
    pub best_val: f64,
    /// Epochs since the best (early-stop bookkeeping).
    pub since_best: usize,
    /// Divergence rollbacks consumed so far (bounded-retry bookkeeping).
    pub rollbacks: usize,
    /// Parameter values of the best epoch, in store order.
    pub best_params: Vec<Vec<f32>>,
    /// Per-epoch statistics up to `next_epoch`.
    pub history: Vec<SnapshotEpoch>,
}

/// `u64` ⇄ JSON via lossless hex strings (JSON numbers are f64-backed and
/// lose bits past 2^53 — RNG words use the full range).
fn u64_to_hex(v: u64) -> Value {
    Value::from(format!("{v:#018x}"))
}

fn hex_to_u64(v: &Value, field: &str) -> io::Result<u64> {
    let s = v.as_str().ok_or_else(|| bad_field(field, "not a string"))?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| bad_field(field, "missing 0x prefix"))?;
    u64::from_str_radix(digits, 16).map_err(|_| bad_field(field, "not a hex u64"))
}

/// `f64` ⇄ JSON via bit-pattern hex strings: exact for every value
/// including ±inf (`best_val` starts at +inf before the first validation
/// pass) and NaN, which plain JSON numbers cannot carry.
fn f64_bits_to_hex(v: f64) -> Value {
    u64_to_hex(v.to_bits())
}

fn hex_to_f64(v: &Value, field: &str) -> io::Result<f64> {
    Ok(f64::from_bits(hex_to_u64(v, field)?))
}

fn bad_field(field: &str, why: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("training snapshot field '{field}': {why}"),
    )
}

fn get<'v>(v: &'v Value, field: &str) -> io::Result<&'v Value> {
    v.get(field).ok_or_else(|| bad_field(field, "missing"))
}

fn get_u64(v: &Value, field: &str) -> io::Result<u64> {
    get(v, field)?
        .as_u64()
        .ok_or_else(|| bad_field(field, "not a non-negative integer"))
}

fn get_f64(v: &Value, field: &str) -> io::Result<f64> {
    get(v, field)?
        .as_f64()
        .ok_or_else(|| bad_field(field, "not a number"))
}

fn moments_to_json(bufs: &[Vec<f32>]) -> Value {
    Value::from(bufs.iter().map(|b| b.to_json()).collect::<Vec<Value>>())
}

fn moments_from_json(v: &Value, field: &str) -> io::Result<Vec<Vec<f32>>> {
    let arr = v
        .as_array()
        .ok_or_else(|| bad_field(field, "not an array"))?;
    arr.iter()
        .enumerate()
        .map(|(i, b)| {
            Vec::<f32>::from_json(b)
                .ok_or_else(|| bad_field(&format!("{field}[{i}]"), "not a float array"))
        })
        .collect()
}

/// Serialize a full training snapshot (current params from `store` plus
/// `snap`'s optimizer/RNG/bookkeeping state) to `path`, crash-safely.
///
/// `chaos` is the fault-injection plan consulted for `corrupt-checkpoint`
/// faults (pass the training run's plan; `None` falls back to the
/// process-wide `HARP_FAULT` plan). An injected corruption mangles the
/// byte stream *after* serialization — exactly what disk bit rot or a torn
/// write would do — and is surfaced on the next [`load_snapshot`], which
/// must reject the damaged file loudly.
pub fn save_snapshot(
    store: &ParamStore,
    snap: &TrainSnapshot,
    path: &Path,
    chaos: Option<&FaultPlan>,
) -> io::Result<()> {
    let json = serde_json::json!({
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "params": params_to_json(store)?,
        "optimizer": serde_json::json!({
            "t": u64_to_hex(snap.adam.t),
            "lr": f64::from(snap.adam.lr),
            "m": moments_to_json(&snap.adam.m),
            "v": moments_to_json(&snap.adam.v),
        }),
        "rng": Value::from(snap.rng_state.iter().map(|&w| u64_to_hex(w)).collect::<Vec<Value>>()),
        "progress": serde_json::json!({
            "next_epoch": snap.next_epoch,
            "best_epoch": snap.best_epoch,
            "best_val": f64_bits_to_hex(snap.best_val),
            "since_best": snap.since_best,
            "rollbacks": snap.rollbacks,
        }),
        "best_params": moments_to_json(&snap.best_params),
        "history": Value::from(snap.history.iter().map(|e| serde_json::json!({
            "epoch": e.epoch,
            "train_loss": f64_bits_to_hex(e.train_loss),
            "val_norm_mlu": f64_bits_to_hex(e.val_norm_mlu),
        })).collect::<Vec<Value>>()),
    });
    let mut bytes = serde_json::to_string(&json)
        .map_err(io::Error::other)?
        .into_bytes();
    let global;
    let plan = match chaos {
        Some(p) => Some(p),
        None => {
            global = harp_chaos::global_plan();
            global.as_deref()
        }
    };
    if let Some(plan) = plan {
        if let Some(mode) = plan.corrupt_checkpoint_write(&mut bytes) {
            harp_obs::event("checkpoint.chaos_corrupted")
                .field("path", path.display().to_string())
                .field("mode", format!("{mode:?}"))
                .emit();
        }
    }
    atomic_write(path, &bytes)
}

/// Top-level snapshot sections, for localizing parse damage. A truncated
/// file still contains every section key written before the cut, so the
/// key at the greatest byte offset names where the damage starts. The
/// `"params"` needle keeps its leading quote so it cannot false-match
/// inside `"best_params"`.
const SNAPSHOT_SECTIONS: [&str; 7] = [
    "\"format_version\"",
    "\"params\"",
    "\"optimizer\"",
    "\"rng\"",
    "\"progress\"",
    "\"best_params\"",
    "\"history\"",
];

/// Name the last top-level section whose key survives in `raw` — the one a
/// truncation or corruption most plausibly landed in. Purely a diagnostic
/// aid: it scans the raw text, so it works even when the JSON no longer
/// parses.
fn furthest_section(raw: &str) -> &'static str {
    let mut best: Option<(usize, &'static str)> = None;
    for needle in SNAPSHOT_SECTIONS {
        if let Some(pos) = raw.rfind(needle) {
            let name = needle.trim_matches('"');
            if best.is_none_or(|(p, _)| pos > p) {
                best = Some((pos, name));
            }
        }
    }
    match best {
        Some((_, name)) => name,
        None => "preamble (no section key survives)",
    }
}

/// Load a training snapshot saved with [`save_snapshot`], validating the
/// **whole** artifact — format version, parameter layout, optimizer-state
/// shape, RNG words, bookkeeping, best-params layout — against the live
/// `store` before mutating it. Every rejection is an
/// [`io::ErrorKind::InvalidData`] error naming the offending field; a
/// snapshot from a different architecture or format revision must fail
/// loudly, never half-load.
///
/// On success the store holds the snapshot's current parameters and the
/// returned [`TrainSnapshot`] carries everything else.
pub fn load_snapshot(store: &mut ParamStore, path: &Path) -> io::Result<TrainSnapshot> {
    let json = fs::read_to_string(path)?;
    let root: Value = serde_json::from_str(&json).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "training snapshot is not valid JSON (corrupt or truncated in \
                 section '{}'): {e}",
                furthest_section(&json)
            ),
        )
    })?;

    let version = get_u64(&root, "format_version")?;
    if version != SNAPSHOT_FORMAT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "training snapshot field 'format_version': snapshot has {version}, \
                 this build reads {SNAPSHOT_FORMAT_VERSION}"
            ),
        ));
    }

    let params: BTreeMap<String, SavedParam> = BTreeMap::from_json(get(&root, "params")?)
        .ok_or_else(|| bad_field("params", "not a name->param map"))?;
    validate_params(store, &params, path)?;

    let opt = get(&root, "optimizer")?;
    let adam = AdamState {
        t: hex_to_u64(get(opt, "t")?, "optimizer.t")?,
        lr: get_f64(opt, "lr")? as f32,
        m: moments_from_json(get(opt, "m")?, "optimizer.m")?,
        v: moments_from_json(get(opt, "v")?, "optimizer.v")?,
    };
    validate_store_layout(store, &adam.m, "optimizer.m")?;
    validate_store_layout(store, &adam.v, "optimizer.v")?;

    let rng_arr = get(&root, "rng")?
        .as_array()
        .ok_or_else(|| bad_field("rng", "not an array"))?;
    if rng_arr.len() != 4 {
        return Err(bad_field(
            "rng",
            &format!("expected 4 state words, found {}", rng_arr.len()),
        ));
    }
    let mut rng_state = [0u64; 4];
    for (i, w) in rng_arr.iter().enumerate() {
        rng_state[i] = hex_to_u64(w, &format!("rng[{i}]"))?;
    }

    let progress = get(&root, "progress")?;
    let best_params = moments_from_json(get(&root, "best_params")?, "best_params")?;
    validate_store_layout(store, &best_params, "best_params")?;

    let history_arr = get(&root, "history")?
        .as_array()
        .ok_or_else(|| bad_field("history", "not an array"))?;
    let mut history = Vec::with_capacity(history_arr.len());
    for (i, e) in history_arr.iter().enumerate() {
        let field = |key: &str| format!("history[{i}].{key}");
        let entry = |key: &str| -> io::Result<&Value> {
            e.get(key).ok_or_else(|| bad_field(&field(key), "missing"))
        };
        history.push(SnapshotEpoch {
            epoch: entry("epoch")?
                .as_u64()
                .ok_or_else(|| bad_field(&field("epoch"), "not a non-negative integer"))?
                as usize,
            train_loss: hex_to_f64(entry("train_loss")?, &field("train_loss"))?,
            val_norm_mlu: hex_to_f64(entry("val_norm_mlu")?, &field("val_norm_mlu"))?,
        });
    }

    let snap = TrainSnapshot {
        adam,
        rng_state,
        next_epoch: get_u64(progress, "next_epoch")? as usize,
        best_epoch: get_u64(progress, "best_epoch")? as usize,
        best_val: hex_to_f64(get(progress, "best_val")?, "progress.best_val")?,
        since_best: get_u64(progress, "since_best")? as usize,
        rollbacks: get_u64(progress, "rollbacks")? as usize,
        best_params,
        history,
    };
    // Everything validated: now (and only now) touch the store.
    apply_params(store, &params);
    Ok(snap)
}

/// Check that `bufs` is one buffer per store parameter with matching
/// lengths, naming the parameter on mismatch.
fn validate_store_layout(store: &ParamStore, bufs: &[Vec<f32>], field: &str) -> io::Result<()> {
    if bufs.len() != store.len() {
        return Err(bad_field(
            field,
            &format!(
                "snapshot has {} buffers, model registers {} parameters",
                bufs.len(),
                store.len()
            ),
        ));
    }
    for (id, buf) in store.ids().zip(bufs) {
        if buf.len() != store.data(id).len() {
            return Err(bad_field(
                &format!("{field}['{}']", store.name(id)),
                &format!(
                    "snapshot buffer has {} values, model parameter has {}",
                    buf.len(),
                    store.data(id).len()
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt_path(case: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("harp_nn_serialize_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{case}.json"))
    }

    #[test]
    fn roundtrip() {
        let path = ckpt_path("roundtrip");
        let mut store = ParamStore::new();
        let a = store.register("a", vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = store.register("b", vec![3], vec![5.0, 6.0, 7.0]);
        save_params(&store, &path).unwrap();

        store.data_mut(a).copy_from_slice(&[0.0; 4]);
        store.data_mut(b).copy_from_slice(&[0.0; 3]);
        load_params(&mut store, &path).unwrap();
        assert_eq!(store.data(a), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(store.data(b), &[5.0, 6.0, 7.0]);
    }

    #[test]
    fn partial_temp_file_never_shadows_valid_checkpoint() {
        let path = ckpt_path("crash_partial");
        let mut store = ParamStore::new();
        let a = store.register("a", vec![2], vec![1.5, -2.5]);
        save_params(&store, &path).unwrap();

        // Simulate a crash mid-save: a truncated temp file next to the
        // checkpoint (what fs::write would have left at the old path).
        let stray = path.with_file_name("crash_partial.json.tmp-dead-0");
        fs::write(&stray, "{\"a\":{\"shape\":[2],\"da").unwrap();

        // The real checkpoint is untouched and still loads.
        store.data_mut(a).copy_from_slice(&[0.0, 0.0]);
        load_params(&mut store, &path).unwrap();
        assert_eq!(store.data(a), &[1.5, -2.5]);

        // A subsequent save still lands atomically despite the stray file.
        store.data_mut(a).copy_from_slice(&[3.0, 4.0]);
        save_params(&store, &path).unwrap();
        let mut fresh = ParamStore::new();
        let b = fresh.register("a", vec![2], vec![0.0, 0.0]);
        load_params(&mut fresh, &path).unwrap();
        assert_eq!(fresh.data(b), &[3.0, 4.0]);
        let _ = fs::remove_file(stray);
    }

    /// Kill-mid-save proxy: a writer thread overwrites the checkpoint in a
    /// tight loop while a reader loads it concurrently. Because saves are
    /// temp-file + rename, every load must observe a complete checkpoint —
    /// one of the writer's values, never a parse/validation error from a
    /// half-written file (which pre-atomic `fs::write` produced readily).
    #[test]
    fn concurrent_loads_never_see_truncated_checkpoints() {
        let path = ckpt_path("crash_concurrent");
        // Large enough that a non-atomic overwrite would take multiple
        // writes and expose torn reads.
        let n = 4096usize;
        let mut store = ParamStore::new();
        let id = store.register("w", vec![n], vec![0.0; n]);
        save_params(&store, &path).unwrap();

        std::thread::scope(|s| {
            let writer_path = path.clone();
            let writer = s.spawn(move || {
                let mut st = ParamStore::new();
                let wid = st.register("w", vec![n], vec![0.0; n]);
                for round in 1..=20u32 {
                    st.data_mut(wid).fill(round as f32);
                    save_params(&st, &writer_path).unwrap();
                }
            });
            let reader_path = path.clone();
            let reader = s.spawn(move || {
                for _ in 0..40 {
                    let mut st = ParamStore::new();
                    let rid = st.register("w", vec![n], vec![-1.0; n]);
                    load_params(&mut st, &reader_path)
                        .expect("load observed a truncated or torn checkpoint");
                    let first = st.data(rid)[0];
                    // a complete checkpoint is uniform in one round's value
                    assert!(
                        st.data(rid).iter().all(|&v| v == first),
                        "torn checkpoint: mixed values in one load"
                    );
                }
            });
            writer.join().unwrap();
            reader.join().unwrap();
        });

        // final state is the last round
        let mut fin = ParamStore::new();
        let fid = fin.register("w", vec![n], vec![0.0; n]);
        load_params(&mut fin, &path).unwrap();
        assert_eq!(fin.data(fid)[0], 20.0);
        let _ = id;
    }

    #[test]
    fn missing_param_is_error_naming_it() {
        let path = ckpt_path("missing");
        let mut small = ParamStore::new();
        let _ = small.register("a", vec![1], vec![1.0]);
        save_params(&small, &path).unwrap();

        let mut bigger = ParamStore::new();
        let _ = bigger.register("a", vec![1], vec![0.0]);
        let _ = bigger.register("layer2.weight", vec![1], vec![0.0]);
        let err = load_params(&mut bigger, &path).expect_err("missing param must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("layer2.weight"),
            "error must name the missing parameter: {err}"
        );
    }

    #[test]
    fn shape_mismatch_is_error_naming_it() {
        let path = ckpt_path("shape_mismatch");
        let mut saved = ParamStore::new();
        let _ = saved.register("enc.weight", vec![2, 3], vec![0.0; 6]);
        save_params(&saved, &path).unwrap();

        let mut other = ParamStore::new();
        let _ = other.register("enc.weight", vec![3, 2], vec![1.0; 6]);
        let err = load_params(&mut other, &path).expect_err("shape mismatch must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("enc.weight"),
            "error must name the mismatched parameter: {msg}"
        );
        assert!(
            msg.contains("[2, 3]") && msg.contains("[3, 2]"),
            "error must show both shapes: {msg}"
        );
        // validation failed before any write: the store is untouched
        let id = other.ids().next().unwrap();
        assert_eq!(other.data(id), &[1.0; 6]);
    }

    #[test]
    fn extra_params_are_rejected_naming_them() {
        let path = ckpt_path("extra");
        let mut bigger = ParamStore::new();
        let _ = bigger.register("shared", vec![1], vec![2.0]);
        let _ = bigger.register("rau.w0", vec![2], vec![1.0, 1.0]);
        let _ = bigger.register("rau.w1", vec![2], vec![1.0, 1.0]);
        save_params(&bigger, &path).unwrap();

        let mut smaller = ParamStore::new();
        let shared = smaller.register("shared", vec![1], vec![9.0]);
        let err = load_params(&mut smaller, &path)
            .expect_err("checkpoint with unknown parameters must fail, not half-load");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("rau.w0") && msg.contains("rau.w1"),
            "error must name every unexpected parameter: {msg}"
        );
        // the rejected load must not have overwritten anything
        assert_eq!(smaller.data(shared), &[9.0]);
    }

    // -- full training snapshots --------------------------------------------

    /// A small store plus a snapshot with awkward values: non-round floats,
    /// full-range RNG words, infinite best_val.
    fn sample_snapshot() -> (ParamStore, TrainSnapshot) {
        let mut store = ParamStore::new();
        let _ = store.register("w", vec![2], vec![0.1, -1.0e-7]);
        let _ = store.register("b", vec![1], vec![3.0]);
        let snap = TrainSnapshot {
            adam: AdamState {
                m: vec![vec![0.25, f32::MIN_POSITIVE], vec![-0.125]],
                v: vec![vec![1.0e-12, 2.5], vec![0.75]],
                t: 37,
                lr: 2.0e-3,
            },
            rng_state: [u64::MAX, 1, 0x9E37_79B9_7F4A_7C15, 42],
            next_epoch: 5,
            best_epoch: 3,
            best_val: f64::INFINITY,
            since_best: 2,
            rollbacks: 1,
            best_params: vec![vec![0.5, 0.25], vec![-3.5]],
            history: vec![
                SnapshotEpoch {
                    epoch: 0,
                    train_loss: 1.0 / 3.0, // non-terminating in binary
                    val_norm_mlu: 1.05,
                },
                SnapshotEpoch {
                    epoch: 1,
                    train_loss: 0.1 + 0.2, // famously unrepresentable exactly
                    val_norm_mlu: 1.0,
                },
            ],
        };
        (store, snap)
    }

    #[test]
    fn snapshot_roundtrips_bitwise() {
        let path = ckpt_path("snapshot_roundtrip");
        let (store, snap) = sample_snapshot();
        save_snapshot(&store, &snap, &path, None).unwrap();

        let mut fresh = ParamStore::new();
        let w = fresh.register("w", vec![2], vec![0.0; 2]);
        let b = fresh.register("b", vec![1], vec![0.0]);
        let loaded = load_snapshot(&mut fresh, &path).unwrap();

        // params land in the store, bitwise
        assert_eq!(fresh.data(w)[0].to_bits(), 0.1f32.to_bits());
        assert_eq!(fresh.data(w)[1].to_bits(), (-1.0e-7f32).to_bits());
        assert_eq!(fresh.data(b)[0], 3.0);
        // optimizer state, bitwise
        assert_eq!(loaded.adam.t, 37);
        assert_eq!(loaded.adam.lr.to_bits(), 2.0e-3f32.to_bits());
        for (a, b) in loaded
            .adam
            .m
            .iter()
            .flatten()
            .zip(snap.adam.m.iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in loaded
            .adam
            .v
            .iter()
            .flatten()
            .zip(snap.adam.v.iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // RNG words, exact (full u64 range)
        assert_eq!(loaded.rng_state, snap.rng_state);
        // bookkeeping
        assert_eq!(loaded.next_epoch, 5);
        assert_eq!(loaded.best_epoch, 3);
        assert!(loaded.best_val.is_infinite() && loaded.best_val > 0.0);
        assert_eq!(loaded.since_best, 2);
        assert_eq!(loaded.rollbacks, 1);
        assert_eq!(loaded.best_params, snap.best_params);
        // history, bitwise
        assert_eq!(loaded.history.len(), 2);
        for (a, b) in loaded.history.iter().zip(&snap.history) {
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
            assert_eq!(a.val_norm_mlu.to_bits(), b.val_norm_mlu.to_bits());
        }
    }

    #[test]
    fn snapshot_rejects_wrong_format_version() {
        let path = ckpt_path("snapshot_version");
        let (store, snap) = sample_snapshot();
        save_snapshot(&store, &snap, &path, None).unwrap();
        let doctored = fs::read_to_string(&path)
            .unwrap()
            .replace("\"format_version\":1", "\"format_version\":99");
        fs::write(&path, doctored).unwrap();

        let (mut store2, _) = sample_snapshot();
        let err = load_snapshot(&mut store2, &path).expect_err("version 99 must be rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("format_version") && msg.contains("99"),
            "error must name the field and version: {msg}"
        );
    }

    #[test]
    fn snapshot_rejects_optimizer_shape_mismatch_naming_param() {
        let path = ckpt_path("snapshot_opt_shape");
        let (store, mut snap) = sample_snapshot();
        snap.adam.v[1] = vec![0.0; 4]; // wrong width for param "b"
        save_snapshot(&store, &snap, &path, None).unwrap();

        let (mut store2, _) = sample_snapshot();
        let before = store2.data(store2.ids().next().unwrap()).to_vec();
        let err = load_snapshot(&mut store2, &path).expect_err("bad moment shape must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("optimizer.v") && msg.contains("'b'"),
            "error must name the buffer and parameter: {msg}"
        );
        // validation failed before any mutation
        assert_eq!(store2.data(store2.ids().next().unwrap()), &before[..]);
    }

    #[test]
    fn snapshot_rejects_param_mismatch_like_load_params() {
        let path = ckpt_path("snapshot_params");
        let (store, snap) = sample_snapshot();
        save_snapshot(&store, &snap, &path, None).unwrap();

        let mut other = ParamStore::new();
        let _ = other.register("w", vec![2], vec![0.0; 2]);
        let _ = other.register("b", vec![2], vec![0.0; 2]); // wrong shape
        let err = load_snapshot(&mut other, &path).expect_err("shape mismatch must fail");
        assert!(err.to_string().contains('b'), "{err}");
    }

    #[test]
    fn snapshot_rejects_truncated_and_corrupt_bytes() {
        let path = ckpt_path("snapshot_torn");
        let (store, snap) = sample_snapshot();
        save_snapshot(&store, &snap, &path, None).unwrap();
        let full = fs::read(&path).unwrap();

        // truncated (torn write)
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        let (mut s1, _) = sample_snapshot();
        let err = load_snapshot(&mut s1, &path).expect_err("truncated snapshot must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // chaos-corrupted via the deterministic plan (flip one byte)
        use harp_chaos::{CorruptMode, FaultKind};
        let plan = FaultPlan::new(
            vec![FaultKind::CorruptCheckpoint {
                write: 0,
                mode: CorruptMode::Flip,
            }],
            7,
        );
        save_snapshot(&store, &snap, &path, Some(&plan)).unwrap();
        let (mut s2, _) = sample_snapshot();
        assert!(
            load_snapshot(&mut s2, &path).is_err(),
            "flipped byte must not load cleanly"
        );
    }

    #[test]
    fn snapshot_truncation_sweep_names_a_section_and_never_panics() {
        let path = ckpt_path("snapshot_sweep");
        let (store, snap) = sample_snapshot();
        save_snapshot(&store, &snap, &path, None).unwrap();
        let full = fs::read(&path).unwrap();

        // Cut the file at every prefix length (0 = empty file, len-1 = one
        // byte short). Every cut must come back as a typed InvalidData
        // error — never a panic, never a half-loaded store — and once the
        // cut lands past the first section key the message must localize
        // the damage to a real section name.
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let (mut s, _) = sample_snapshot();
            let err =
                load_snapshot(&mut s, &path).expect_err("every truncated prefix must be rejected");
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "cut at {cut}: wrong error kind: {err}"
            );
            let msg = err.to_string();
            if msg.contains("not valid JSON") {
                assert!(
                    msg.contains("section '"),
                    "cut at {cut}: parse error must name a section: {msg}"
                );
            }
        }

        // The localization must actually track the cut point: a cut inside
        // the history array blames 'history', one before any key blames the
        // preamble.
        let text = String::from_utf8(full.clone()).unwrap();
        let hist_at = text.find("\"history\"").unwrap();
        fs::write(&path, &full[..hist_at + "\"history\"".len() + 3]).unwrap();
        let (mut s, _) = sample_snapshot();
        let msg = load_snapshot(&mut s, &path).unwrap_err().to_string();
        assert!(
            msg.contains("section 'history'"),
            "cut inside history must blame history: {msg}"
        );

        fs::write(&path, &full[..1]).unwrap();
        let (mut s, _) = sample_snapshot();
        let msg = load_snapshot(&mut s, &path).unwrap_err().to_string();
        assert!(
            msg.contains("preamble"),
            "cut before any key must blame the preamble: {msg}"
        );
    }
}
