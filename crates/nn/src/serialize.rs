//! Parameter (de)serialization: checkpoints as a JSON name→(shape, data)
//! map, so trained models survive process restarts and can be shipped with
//! experiment results.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use harp_tensor::ParamStore;
use serde_json::{FromJson, ToJson, Value};

struct SavedParam {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl ToJson for SavedParam {
    fn to_json(&self) -> Value {
        serde_json::json!({
            "shape": self.shape.to_json(),
            "data": self.data.to_json(),
        })
    }
}

impl FromJson for SavedParam {
    fn from_json(v: &Value) -> Option<Self> {
        Some(SavedParam {
            shape: Vec::from_json(v.get("shape")?)?,
            data: Vec::from_json(v.get("data")?)?,
        })
    }
}

/// Monotonic discriminator for temp-file names, so concurrent saves in one
/// process never collide on the same scratch path.
static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Write every parameter in `store` to `path` as JSON, **crash-safely**:
/// the JSON is first written to a uniquely-named temp file in the same
/// directory and then `rename`d into place. A process killed mid-save can
/// leave a stray `*.tmp-*` file behind, but `path` itself only ever holds
/// either the previous complete checkpoint or the new complete one — a
/// hot-reloading server can never observe a truncated checkpoint.
pub fn save_params(store: &ParamStore, path: &Path) -> io::Result<()> {
    let mut map = BTreeMap::new();
    for id in store.ids() {
        map.insert(
            store.name(id).to_string(),
            SavedParam {
                shape: store.shape(id).0.clone(),
                data: store.data(id).to_vec(),
            },
        );
    }
    let json = serde_json::to_string(&map).map_err(io::Error::other)?;

    // Same-directory temp file: rename(2) is only atomic within one
    // filesystem, and the checkpoint's directory is the one place we know
    // is on it.
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("checkpoint path {} has no file name", path.display()),
        )
    })?;
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp-{}-{seq}", std::process::id()));
    let tmp_path = path.with_file_name(tmp_name);

    fs::write(&tmp_path, json)?;
    fs::rename(&tmp_path, path).inspect_err(|_| {
        // rename failed: don't leave the scratch file around
        let _ = fs::remove_file(&tmp_path);
    })
}

/// Load parameter values saved with [`save_params`] into a store whose
/// registered names/shapes must match exactly (the model must be
/// constructed with the same architecture and names first).
///
/// Rejects with [`io::ErrorKind::InvalidData`] when the checkpoint is
/// missing a registered parameter, disagrees on a shape, **or contains
/// parameters the store does not register** — a checkpoint from a
/// different architecture must fail loudly instead of half-succeeding.
/// The error message names every offending parameter. The store is not
/// modified unless validation of the whole checkpoint passes.
pub fn load_params(store: &mut ParamStore, path: &Path) -> io::Result<()> {
    let json = fs::read_to_string(path)?;
    let map: BTreeMap<String, SavedParam> =
        serde_json::from_str(&json).map_err(io::Error::other)?;

    let ids: Vec<_> = store.ids().collect();
    // Validate everything before writing anything, so a failed load can't
    // leave the store half-overwritten.
    for &id in &ids {
        let name = store.name(id);
        let saved = map.get(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint missing parameter '{name}'"),
            )
        })?;
        if saved.shape != store.shape(id).0 || saved.data.len() != store.data(id).len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint shape mismatch for '{name}': checkpoint {:?} ({} values) vs model {:?} ({} values)",
                    saved.shape,
                    saved.data.len(),
                    store.shape(id).0,
                    store.data(id).len()
                ),
            ));
        }
    }
    let known: std::collections::BTreeSet<&str> = ids.iter().map(|&id| store.name(id)).collect();
    let unexpected: Vec<&str> = map
        .keys()
        .map(String::as_str)
        .filter(|k| !known.contains(k))
        .collect();
    if !unexpected.is_empty() {
        harp_obs::event("checkpoint.unexpected_params")
            .field("path", path.display().to_string())
            .field("count", unexpected.len())
            .field_with("names", || unexpected.join(", ").into())
            .emit();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint contains {} parameter(s) not registered in the model \
                 (architecture mismatch?): {}",
                unexpected.len(),
                unexpected.join(", ")
            ),
        ));
    }

    for id in ids {
        let name = store.name(id).to_string();
        let saved = map
            .get(name.as_str())
            .expect("validated above: every registered parameter is present");
        store.data_mut(id).copy_from_slice(&saved.data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt_path(case: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("harp_nn_serialize_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{case}.json"))
    }

    #[test]
    fn roundtrip() {
        let path = ckpt_path("roundtrip");
        let mut store = ParamStore::new();
        let a = store.register("a", vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = store.register("b", vec![3], vec![5.0, 6.0, 7.0]);
        save_params(&store, &path).unwrap();

        store.data_mut(a).copy_from_slice(&[0.0; 4]);
        store.data_mut(b).copy_from_slice(&[0.0; 3]);
        load_params(&mut store, &path).unwrap();
        assert_eq!(store.data(a), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(store.data(b), &[5.0, 6.0, 7.0]);
    }

    #[test]
    fn partial_temp_file_never_shadows_valid_checkpoint() {
        let path = ckpt_path("crash_partial");
        let mut store = ParamStore::new();
        let a = store.register("a", vec![2], vec![1.5, -2.5]);
        save_params(&store, &path).unwrap();

        // Simulate a crash mid-save: a truncated temp file next to the
        // checkpoint (what fs::write would have left at the old path).
        let stray = path.with_file_name("crash_partial.json.tmp-dead-0");
        fs::write(&stray, "{\"a\":{\"shape\":[2],\"da").unwrap();

        // The real checkpoint is untouched and still loads.
        store.data_mut(a).copy_from_slice(&[0.0, 0.0]);
        load_params(&mut store, &path).unwrap();
        assert_eq!(store.data(a), &[1.5, -2.5]);

        // A subsequent save still lands atomically despite the stray file.
        store.data_mut(a).copy_from_slice(&[3.0, 4.0]);
        save_params(&store, &path).unwrap();
        let mut fresh = ParamStore::new();
        let b = fresh.register("a", vec![2], vec![0.0, 0.0]);
        load_params(&mut fresh, &path).unwrap();
        assert_eq!(fresh.data(b), &[3.0, 4.0]);
        let _ = fs::remove_file(stray);
    }

    /// Kill-mid-save proxy: a writer thread overwrites the checkpoint in a
    /// tight loop while a reader loads it concurrently. Because saves are
    /// temp-file + rename, every load must observe a complete checkpoint —
    /// one of the writer's values, never a parse/validation error from a
    /// half-written file (which pre-atomic `fs::write` produced readily).
    #[test]
    fn concurrent_loads_never_see_truncated_checkpoints() {
        let path = ckpt_path("crash_concurrent");
        // Large enough that a non-atomic overwrite would take multiple
        // writes and expose torn reads.
        let n = 4096usize;
        let mut store = ParamStore::new();
        let id = store.register("w", vec![n], vec![0.0; n]);
        save_params(&store, &path).unwrap();

        std::thread::scope(|s| {
            let writer_path = path.clone();
            let writer = s.spawn(move || {
                let mut st = ParamStore::new();
                let wid = st.register("w", vec![n], vec![0.0; n]);
                for round in 1..=20u32 {
                    st.data_mut(wid).fill(round as f32);
                    save_params(&st, &writer_path).unwrap();
                }
            });
            let reader_path = path.clone();
            let reader = s.spawn(move || {
                for _ in 0..40 {
                    let mut st = ParamStore::new();
                    let rid = st.register("w", vec![n], vec![-1.0; n]);
                    load_params(&mut st, &reader_path)
                        .expect("load observed a truncated or torn checkpoint");
                    let first = st.data(rid)[0];
                    // a complete checkpoint is uniform in one round's value
                    assert!(
                        st.data(rid).iter().all(|&v| v == first),
                        "torn checkpoint: mixed values in one load"
                    );
                }
            });
            writer.join().unwrap();
            reader.join().unwrap();
        });

        // final state is the last round
        let mut fin = ParamStore::new();
        let fid = fin.register("w", vec![n], vec![0.0; n]);
        load_params(&mut fin, &path).unwrap();
        assert_eq!(fin.data(fid)[0], 20.0);
        let _ = id;
    }

    #[test]
    fn missing_param_is_error_naming_it() {
        let path = ckpt_path("missing");
        let mut small = ParamStore::new();
        let _ = small.register("a", vec![1], vec![1.0]);
        save_params(&small, &path).unwrap();

        let mut bigger = ParamStore::new();
        let _ = bigger.register("a", vec![1], vec![0.0]);
        let _ = bigger.register("layer2.weight", vec![1], vec![0.0]);
        let err = load_params(&mut bigger, &path).expect_err("missing param must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("layer2.weight"),
            "error must name the missing parameter: {err}"
        );
    }

    #[test]
    fn shape_mismatch_is_error_naming_it() {
        let path = ckpt_path("shape_mismatch");
        let mut saved = ParamStore::new();
        let _ = saved.register("enc.weight", vec![2, 3], vec![0.0; 6]);
        save_params(&saved, &path).unwrap();

        let mut other = ParamStore::new();
        let _ = other.register("enc.weight", vec![3, 2], vec![1.0; 6]);
        let err = load_params(&mut other, &path).expect_err("shape mismatch must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("enc.weight"),
            "error must name the mismatched parameter: {msg}"
        );
        assert!(
            msg.contains("[2, 3]") && msg.contains("[3, 2]"),
            "error must show both shapes: {msg}"
        );
        // validation failed before any write: the store is untouched
        let id = other.ids().next().unwrap();
        assert_eq!(other.data(id), &[1.0; 6]);
    }

    #[test]
    fn extra_params_are_rejected_naming_them() {
        let path = ckpt_path("extra");
        let mut bigger = ParamStore::new();
        let _ = bigger.register("shared", vec![1], vec![2.0]);
        let _ = bigger.register("rau.w0", vec![2], vec![1.0, 1.0]);
        let _ = bigger.register("rau.w1", vec![2], vec![1.0, 1.0]);
        save_params(&bigger, &path).unwrap();

        let mut smaller = ParamStore::new();
        let shared = smaller.register("shared", vec![1], vec![9.0]);
        let err = load_params(&mut smaller, &path)
            .expect_err("checkpoint with unknown parameters must fail, not half-load");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("rau.w0") && msg.contains("rau.w1"),
            "error must name every unexpected parameter: {msg}"
        );
        // the rejected load must not have overwritten anything
        assert_eq!(smaller.data(shared), &[9.0]);
    }
}
