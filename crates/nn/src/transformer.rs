//! Transformer encoder without positional encodings — the paper's SETTRANS.

use std::sync::Arc;

use harp_tensor::{ParamStore, Tape, Var};
use rand::Rng;

use crate::{Activation, LayerNormAffine, Linear, MultiHeadAttention};

/// One pre-norm transformer encoder layer:
/// `x + MHA(LN(x))` then `x + FF(LN(x))`.
#[derive(Clone, Debug)]
pub struct TransformerEncoderLayer {
    mha: MultiHeadAttention,
    ln1: LayerNormAffine,
    ln2: LayerNormAffine,
    ff1: Linear,
    ff2: Linear,
}

impl TransformerEncoderLayer {
    /// Create a layer of width `d_model` with `n_heads` heads and a
    /// feed-forward hidden width `d_ff`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        d_model: usize,
        n_heads: usize,
        d_ff: usize,
    ) -> Self {
        TransformerEncoderLayer {
            mha: MultiHeadAttention::new(store, rng, &format!("{name}.mha"), d_model, n_heads),
            ln1: LayerNormAffine::new(store, &format!("{name}.ln1"), d_model),
            ln2: LayerNormAffine::new(store, &format!("{name}.ln2"), d_model),
            ff1: Linear::new(store, rng, &format!("{name}.ff1"), d_model, d_ff, true),
            ff2: Linear::new(store, rng, &format!("{name}.ff2"), d_ff, d_model, true),
        }
    }

    /// Apply the layer to `[batch, seq, d_model]`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        score_mask: Option<Arc<Vec<f32>>>,
    ) -> Var {
        let n1 = self.ln1.forward(tape, store, x);
        let att = self.mha.forward(tape, store, n1, score_mask);
        let x = tape.add(x, att);
        let n2 = self.ln2.forward(tape, store, x);
        let h = self.ff1.forward_act(tape, store, n2, Activation::Relu);
        let h = self.ff2.forward(tape, store, h);
        tape.add(x, h)
    }
}

/// A stack of encoder layers (parameters are *not* shared between layers;
/// the same stack is applied to every tunnel, which is what gives HARP its
/// tunnel-count independence).
#[derive(Clone, Debug)]
pub struct TransformerEncoder {
    layers: Vec<TransformerEncoderLayer>,
}

impl TransformerEncoder {
    /// Create `n_layers` encoder layers.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        n_layers: usize,
        d_model: usize,
        n_heads: usize,
        d_ff: usize,
    ) -> Self {
        let layers = (0..n_layers)
            .map(|i| {
                TransformerEncoderLayer::new(
                    store,
                    rng,
                    &format!("{name}.{i}"),
                    d_model,
                    n_heads,
                    d_ff,
                )
            })
            .collect();
        TransformerEncoder { layers }
    }

    /// Apply the stack to `[batch, seq, d_model]`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        score_mask: Option<Arc<Vec<f32>>>,
    ) -> Var {
        let mut h = x;
        for layer in &self.layers {
            h = layer.forward(tape, store, h, score_mask.clone());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_tensor::gradcheck::gradcheck;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn encoder_is_permutation_equivariant() {
        let (s, d) = (5usize, 8usize);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "e", 2, d, 2, 16);

        let data: Vec<f32> = (0..s * d).map(|i| ((i * 31 % 17) as f32) * 0.05).collect();
        let perm = [4usize, 2, 0, 1, 3];
        let mut pdata = vec![0.0f32; data.len()];
        for i in 0..s {
            pdata[perm[i] * d..(perm[i] + 1) * d].copy_from_slice(&data[i * d..(i + 1) * d]);
        }

        let run = |input: Vec<f32>| {
            let mut t = Tape::new();
            let x = t.constant(vec![1, s, d], input);
            let y = enc.forward(&mut t, &store, x, None);
            t.value(y).to_vec()
        };
        let y = run(data);
        let yp = run(pdata);
        for i in 0..s {
            for j in 0..d {
                assert!(
                    (y[i * d + j] - yp[perm[i] * d + j]).abs() < 1e-3,
                    "pos {i} dim {j}"
                );
            }
        }
    }

    #[test]
    fn encoder_gradcheck_small() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "e", 1, 4, 1, 8);
        let ids: Vec<_> = store.ids().collect();
        let res = gradcheck(&mut store, &ids, 1e-2, 5e-2, |st| {
            let mut t = Tape::new();
            let x = t.constant(vec![1, 3, 4], (0..12).map(|i| 0.1 * i as f32).collect());
            let y = enc.forward(&mut t, st, x, None);
            let l = t.mean_all(y);
            (t, l)
        });
        assert!(res.is_ok(), "{:?}", res);
    }
}
