//! Chaos scenarios for the training loop: deterministic fault plans drive
//! NaN gradients, worker kills, checkpoint corruption, and simulated
//! aborts through `train_model`, and every failure mode must surface as
//! the documented structured behavior — rollback, typed error, or clean
//! resume — never a crash or silent garbage.

use std::sync::Arc;

use harp_chaos::{FaultKind, FaultPlan};
use harp_core::{
    train_model, EvalOptions, Harp, HarpConfig, Instance, TrainConfig, TrainError, SNAPSHOT_FILE,
};
use harp_opt::MluOracle;
use harp_paths::TunnelSet;
use harp_tensor::ParamStore;
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn diamond() -> (Topology, TunnelSet) {
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, 10.0).unwrap();
    topo.add_link(1, 3, 10.0).unwrap();
    topo.add_link(0, 2, 20.0).unwrap();
    topo.add_link(2, 3, 20.0).unwrap();
    let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);
    (topo, tunnels)
}

type Labeled = Vec<(Instance, f64)>;

fn dataset() -> (Labeled, Labeled) {
    let (topo, tunnels) = diamond();
    let mut rng = StdRng::seed_from_u64(5);
    let oracle = MluOracle::default();
    let make = |rng: &mut StdRng| {
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, rng.gen_range(5.0..15.0));
        tm.set_demand(3, 0, rng.gen_range(2.0..8.0));
        let inst = Instance::compile(&topo, &tunnels, &tm);
        let opt = oracle.solve(&inst.program).mlu;
        (inst, opt)
    };
    let train: Vec<(Instance, f64)> = (0..8).map(|_| make(&mut rng)).collect();
    let val: Vec<(Instance, f64)> = (0..3).map(|_| make(&mut rng)).collect();
    (train, val)
}

fn fresh_model() -> (Harp, ParamStore) {
    let mut store = ParamStore::new();
    let mut mrng = StdRng::seed_from_u64(1);
    let cfg = HarpConfig {
        gnn_layers: 1,
        gnn_hidden: 4,
        d_model: 8,
        settrans_layers: 1,
        heads: 1,
        d_ff: 8,
        mlp_hidden: 8,
        rau_iters: 1,
    };
    let harp = Harp::new(&mut store, &mut mrng, cfg);
    (harp, store)
}

fn base_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 4,
        lr: 5e-3,
        patience: 0,
        ..Default::default()
    }
}

fn scratch_dir(case: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("harp_core_chaos_{case}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A NaN gradient injected at step 2 must trigger exactly one rollback —
/// the run then finishes healthy, with finite parameters and the LR
/// halving recorded via the consumed rollback budget.
#[test]
fn nan_gradient_rolls_back_and_recovers() {
    let (train, val) = dataset();
    let train_refs: Vec<(&Instance, f64)> = train.iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = val.iter().map(|(i, o)| (i, *o)).collect();
    let (harp, mut store) = fresh_model();

    let plan = Arc::new(FaultPlan::new(vec![FaultKind::NanGrad { step: 2 }], 0));
    let report = train_model(
        &harp,
        &mut store,
        &train_refs,
        &val_refs,
        TrainConfig {
            chaos: Some(Arc::clone(&plan)),
            ..base_cfg()
        },
        EvalOptions::default(),
    )
    .expect("one NaN step is inside the rollback budget");
    assert_eq!(report.rollbacks, 1, "exactly one rollback");
    assert!(plan.exhausted(), "the fault must actually have fired");
    assert_eq!(report.history.len(), 3, "all epochs still ran");
    for id in store.ids() {
        assert!(
            store.data(id).iter().all(|v| v.is_finite()),
            "rolled-back parameters must be finite"
        );
    }
}

/// With a zero rollback budget the same fault is a typed `Diverged` error
/// naming the trigger — and the store is left on finite epoch-start
/// parameters, not NaN garbage.
#[test]
fn exhausted_rollback_budget_is_typed_divergence_error() {
    let (train, val) = dataset();
    let train_refs: Vec<(&Instance, f64)> = train.iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = val.iter().map(|(i, o)| (i, *o)).collect();
    let (harp, mut store) = fresh_model();

    let plan = Arc::new(FaultPlan::new(vec![FaultKind::NanGrad { step: 0 }], 0));
    let err = train_model(
        &harp,
        &mut store,
        &train_refs,
        &val_refs,
        TrainConfig {
            max_rollbacks: 0,
            chaos: Some(plan),
            ..base_cfg()
        },
        EvalOptions::default(),
    )
    .expect_err("no budget: divergence must be fatal");
    match &err {
        TrainError::Diverged {
            epoch,
            rollbacks,
            detail,
        } => {
            assert_eq!(*epoch, 0);
            assert_eq!(*rollbacks, 0);
            assert!(
                detail.contains("NaN") || detail.contains("non-finite"),
                "detail must name the trigger: {detail}"
            );
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
    for id in store.ids() {
        assert!(
            store.data(id).iter().all(|v| v.is_finite()),
            "store must hold finite epoch-start parameters after the error"
        );
    }
}

/// A worker killed mid-epoch is contained at the pool boundary: the epoch
/// rolls back once and the run completes, instead of the panic aborting
/// the process.
#[test]
fn killed_worker_is_contained_and_rolled_back() {
    let (train, val) = dataset();
    let train_refs: Vec<(&Instance, f64)> = train.iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = val.iter().map(|(i, o)| (i, *o)).collect();
    let (harp, mut store) = fresh_model();

    let plan = Arc::new(FaultPlan::new(
        vec![FaultKind::KillWorker {
            epoch: 1,
            worker: 1,
        }],
        0,
    ));
    let report = train_model(
        &harp,
        &mut store,
        &train_refs,
        &val_refs,
        TrainConfig {
            workers: 4,
            chaos: Some(Arc::clone(&plan)),
            ..base_cfg()
        },
        EvalOptions::default(),
    )
    .expect("a single worker kill is recoverable");
    assert_eq!(report.rollbacks, 1);
    assert!(plan.exhausted(), "the kill fault must have fired");
    assert_eq!(report.history.len(), 3);
}

/// Checkpoint corruption on write (chaos standing in for disk bit rot)
/// must be caught loudly at resume time: the next run pointed at the
/// damaged directory fails with a typed checkpoint error and never trains
/// on garbage.
#[test]
fn corrupted_checkpoint_is_rejected_at_resume() {
    let dir = scratch_dir("corrupt");
    let (train, val) = dataset();
    let train_refs: Vec<(&Instance, f64)> = train.iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = val.iter().map(|(i, o)| (i, *o)).collect();

    // First run: the chaos plan flips one byte of the first snapshot write.
    // The save itself "succeeds" — exactly like bit rot under a crash.
    let (harp, mut store) = fresh_model();
    let plan = Arc::new(FaultPlan::new(
        vec![FaultKind::CorruptCheckpoint {
            write: 0,
            mode: harp_chaos::CorruptMode::Flip,
        }],
        7,
    ));
    train_model(
        &harp,
        &mut store,
        &train_refs,
        &val_refs,
        TrainConfig {
            epochs: 1,
            checkpoint_dir: Some(dir.clone()),
            chaos: Some(Arc::clone(&plan)),
            ..base_cfg()
        },
        EvalOptions::default(),
    )
    .expect("the corrupting run itself completes");
    assert!(plan.exhausted(), "the corruption fault must have fired");
    assert!(dir.join(SNAPSHOT_FILE).exists());

    // Resume: the damaged snapshot must be rejected with a typed error.
    let (harp2, mut store2) = fresh_model();
    let err = train_model(
        &harp2,
        &mut store2,
        &train_refs,
        &val_refs,
        TrainConfig {
            epochs: 3,
            checkpoint_dir: Some(dir.clone()),
            ..base_cfg()
        },
        EvalOptions::default(),
    )
    .expect_err("a corrupt snapshot must never be trained on");
    match &err {
        TrainError::Checkpoint(e) => {
            assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "{e}");
        }
        other => panic!("expected Checkpoint, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A truncating corruption (torn write) is likewise rejected at resume.
#[test]
fn truncated_checkpoint_is_rejected_at_resume() {
    let dir = scratch_dir("truncate");
    let (train, val) = dataset();
    let train_refs: Vec<(&Instance, f64)> = train.iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = val.iter().map(|(i, o)| (i, *o)).collect();

    let (harp, mut store) = fresh_model();
    let plan = Arc::new(FaultPlan::new(
        vec![FaultKind::CorruptCheckpoint {
            write: 0,
            mode: harp_chaos::CorruptMode::Truncate,
        }],
        7,
    ));
    train_model(
        &harp,
        &mut store,
        &train_refs,
        &val_refs,
        TrainConfig {
            epochs: 1,
            checkpoint_dir: Some(dir.clone()),
            chaos: Some(plan),
            ..base_cfg()
        },
        EvalOptions::default(),
    )
    .expect("the corrupting run itself completes");

    let (harp2, mut store2) = fresh_model();
    let err = train_model(
        &harp2,
        &mut store2,
        &train_refs,
        &val_refs,
        TrainConfig {
            epochs: 3,
            checkpoint_dir: Some(dir.clone()),
            ..base_cfg()
        },
        EvalOptions::default(),
    )
    .expect_err("a truncated snapshot must never be trained on");
    assert!(matches!(err, TrainError::Checkpoint(_)), "{err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A chaos abort simulates a crash between epochs: the run returns a
/// typed `Aborted` error after checkpointing, and a plain re-invocation
/// picks the snapshot up and finishes the remaining epochs.
#[test]
fn abort_fault_interrupts_and_resume_finishes() {
    let dir = scratch_dir("abort");
    let (train, val) = dataset();
    let train_refs: Vec<(&Instance, f64)> = train.iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = val.iter().map(|(i, o)| (i, *o)).collect();

    let (harp, mut store) = fresh_model();
    let plan = Arc::new(FaultPlan::new(vec![FaultKind::Abort { epoch: 0 }], 0));
    let err = train_model(
        &harp,
        &mut store,
        &train_refs,
        &val_refs,
        TrainConfig {
            checkpoint_dir: Some(dir.clone()),
            chaos: Some(plan),
            ..base_cfg()
        },
        EvalOptions::default(),
    )
    .expect_err("abort fault must interrupt the run");
    assert!(matches!(err, TrainError::Aborted { epoch: 0 }), "{err:?}");
    assert!(dir.join(SNAPSHOT_FILE).exists(), "interrupted after saving");

    let (harp2, mut store2) = fresh_model();
    let report = train_model(
        &harp2,
        &mut store2,
        &train_refs,
        &val_refs,
        TrainConfig {
            checkpoint_dir: Some(dir.clone()),
            ..base_cfg()
        },
        EvalOptions::default(),
    )
    .expect("resume completes the interrupted run");
    assert_eq!(report.resumed_from, Some(1), "resumed after epoch 0");
    assert_eq!(report.history.len(), 3, "all epochs accounted for");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `HARP_FAULT` grammar parses round-trippably for the scenarios CI
/// runs, and a malformed plan is a loud parse error, not a silent no-op.
#[test]
fn fault_plan_grammar_parses_ci_scenarios() {
    let plan = FaultPlan::parse("nan-grad@step=2").expect("valid");
    assert_eq!(plan.faults(), vec![FaultKind::NanGrad { step: 2 }]);

    let plan = FaultPlan::parse("corrupt-checkpoint@write=1,mode=flip;seed=7").expect("valid");
    assert_eq!(plan.seed(), 7);

    let plan = FaultPlan::parse("kill-worker@epoch=1,worker=1").expect("valid");
    assert_eq!(
        plan.faults(),
        vec![FaultKind::KillWorker {
            epoch: 1,
            worker: 1
        }]
    );

    FaultPlan::parse("explode@yes=1").expect_err("unknown fault name must be rejected");
    FaultPlan::parse("nan-grad@step").expect_err("malformed parameter must be rejected");
}
