//! End-to-end observability check: a quick HARP training run with the
//! JSONL sink enabled must emit machine-parseable per-epoch metric records
//! (loss, validation NormMLU, wall time) that line up with the returned
//! `TrainReport`, plus `train.start`/`train.done` run markers.
//!
//! Runs as its own integration-test binary so its process-wide
//! `harp_obs::init` cannot leak into other tests.

use std::fs;

use harp_core::{
    evaluate_model, norm_mlu, train_model, EvalOptions, Harp, HarpConfig, Instance, TrainConfig,
};
use harp_opt::MluOracle;
use harp_paths::TunnelSet;
use harp_tensor::ParamStore;
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde_json::Value;

#[test]
fn jsonl_sink_records_per_epoch_training_metrics() {
    let path = std::env::temp_dir().join("harp_obs_metrics_test.jsonl");
    let _ = fs::remove_file(&path);
    assert!(
        harp_obs::init(harp_obs::Config::jsonl_to(&path)),
        "first init in this process must win"
    );

    // Quick-mode training on the zoo-style diamond topology.
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, 10.0).expect("valid link");
    topo.add_link(1, 3, 10.0).expect("valid link");
    topo.add_link(0, 2, 20.0).expect("valid link");
    topo.add_link(2, 3, 20.0).expect("valid link");
    let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);

    let mut rng = StdRng::seed_from_u64(5);
    let oracle = MluOracle::default();
    let make = |rng: &mut StdRng| {
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, rng.gen_range(5.0..15.0));
        tm.set_demand(3, 0, rng.gen_range(2.0..8.0));
        let inst = Instance::compile(&topo, &tunnels, &tm);
        let opt = oracle.solve(&inst.program).mlu;
        (inst, opt)
    };
    let train_set: Vec<(Instance, f64)> = (0..6).map(|_| make(&mut rng)).collect();
    let val_set: Vec<(Instance, f64)> = (0..2).map(|_| make(&mut rng)).collect();
    let train_refs: Vec<(&Instance, f64)> = train_set.iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = val_set.iter().map(|(i, o)| (i, *o)).collect();

    let mut store = ParamStore::new();
    let mut mrng = StdRng::seed_from_u64(1);
    let cfg = HarpConfig {
        gnn_layers: 1,
        gnn_hidden: 4,
        d_model: 8,
        settrans_layers: 1,
        heads: 1,
        d_ff: 8,
        mlp_hidden: 8,
        rau_iters: 1,
    };
    let harp = Harp::new(&mut store, &mut mrng, cfg);
    let report = train_model(
        &harp,
        &mut store,
        &train_refs,
        &val_refs,
        TrainConfig {
            epochs: 4,
            batch_size: 3,
            patience: 0,
            ..Default::default()
        },
        EvalOptions::default(),
    )
    .expect("healthy training run");
    harp_obs::flush();

    let text = fs::read_to_string(&path).expect("JSONL metrics file must exist");
    let records: Vec<Value> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}")))
        .collect();
    assert!(!records.is_empty(), "sink produced no records");
    let ev = |r: &Value| r.get("ev").and_then(Value::as_str).map(str::to_string);

    let starts: Vec<&Value> = records
        .iter()
        .filter(|r| ev(r).as_deref() == Some("train.start"))
        .collect();
    assert_eq!(starts.len(), 1, "exactly one train.start record");
    assert_eq!(starts[0].get("model").and_then(Value::as_str), Some("HARP"));

    let epochs: Vec<&Value> = records
        .iter()
        .filter(|r| ev(r).as_deref() == Some("train.epoch"))
        .collect();
    assert_eq!(
        epochs.len(),
        report.history.len(),
        "one train.epoch record per epoch in the report"
    );
    for (rec, stats) in epochs.iter().zip(&report.history) {
        let epoch = rec
            .get("epoch")
            .and_then(Value::as_u64)
            .expect("epoch field");
        assert_eq!(epoch as usize, stats.epoch);
        let loss = rec.get("loss").and_then(Value::as_f64).expect("loss field");
        assert!(
            (loss - stats.train_loss).abs() < 1e-9,
            "epoch {epoch}: loss {loss} vs report {}",
            stats.train_loss
        );
        let val = rec
            .get("val_norm_mlu")
            .and_then(Value::as_f64)
            .expect("val_norm_mlu field");
        assert!(
            (val - stats.val_norm_mlu).abs() < 1e-9,
            "epoch {epoch}: val {val} vs report {}",
            stats.val_norm_mlu
        );
        let wall = rec
            .get("wall_s")
            .and_then(Value::as_f64)
            .expect("wall_s field");
        assert!((0.0..600.0).contains(&wall), "implausible wall_s {wall}");
        assert!(
            rec.get("grad_norm").and_then(Value::as_f64).is_some(),
            "grad_norm field present"
        );
        assert!(
            rec.get("workers").and_then(Value::as_u64).is_some(),
            "workers field present"
        );
    }

    let dones: Vec<&Value> = records
        .iter()
        .filter(|r| ev(r).as_deref() == Some("train.done"))
        .collect();
    assert_eq!(dones.len(), 1, "exactly one train.done record");
    assert_eq!(
        dones[0].get("best_epoch").and_then(Value::as_u64),
        Some(report.best_epoch as u64)
    );

    // The store holds the selected checkpoint; make sure the run was real.
    let (mlu, _) = evaluate_model(&harp, &store, val_refs[0].0, EvalOptions::default());
    assert!(norm_mlu(mlu, val_refs[0].1).is_finite());
}
