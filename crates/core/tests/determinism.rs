//! Integration tests for [`harp_core::analyze_determinism`]: the three
//! paper models must certify clean on a real compiled instance, and each
//! class of seeded determinism violation must be detected with a
//! structured report naming the offending op.

use harp_core::{
    analyze_determinism, Dote, EpochCache, Harp, HarpConfig, Instance, SplitModel, Teal, TealConfig,
};
use harp_paths::TunnelSet;
use harp_tensor::{ParamStore, Tape, Var};
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;
use harp_verify::analyze_grad_aliasing;
use rand::{rngs::StdRng, SeedableRng};

fn tiny_instance() -> Instance {
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, 10.0).unwrap();
    topo.add_link(1, 2, 10.0).unwrap();
    topo.add_link(2, 3, 10.0).unwrap();
    topo.add_link(3, 0, 10.0).unwrap();
    let tunnels = TunnelSet::k_shortest(&topo, &[0, 2], 2, 0.0);
    let mut tm = TrafficMatrix::zeros(4);
    tm.set_demand(0, 2, 4.0);
    tm.set_demand(2, 0, 2.0);
    Instance::compile(&topo, &tunnels, &tm)
}

fn tiny_harp(store: &mut ParamStore) -> Harp {
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = HarpConfig {
        gnn_layers: 1,
        gnn_hidden: 4,
        d_model: 8,
        settrans_layers: 1,
        heads: 1,
        d_ff: 8,
        mlp_hidden: 8,
        rau_iters: 2,
    };
    Harp::new(store, &mut rng, cfg)
}

#[test]
fn harp_certifies_clean_with_a_real_epoch_cache() {
    let inst = tiny_instance();
    let mut store = ParamStore::new();
    let harp = tiny_harp(&mut store);
    let report = analyze_determinism(&harp, &store, &inst);
    assert!(report.is_clean(), "{report}");
    assert!(report.has_epoch_cache);
    assert!(report.cache.has("cache-spliced"), "{report}");
    // RAU recursion reuses the head parameters every iteration: the
    // aliasing pass must surface that as the (informational) fan-in a
    // partitioned backward would need private buffers for.
    assert!(report.aliasing.has("shared-param-fanin"), "{report}");
}

#[test]
fn dote_and_teal_certify_clean_without_a_cache() {
    let inst = tiny_instance();
    let mut rng = StdRng::seed_from_u64(11);

    let mut store = ParamStore::new();
    let dote = Dote::new(&mut store, &mut rng, &inst, &[16]);
    let report = analyze_determinism(&dote, &store, &inst);
    assert!(report.is_clean(), "{report}");
    assert!(!report.has_epoch_cache);
    assert!(report.cache.has("cache-unused"), "{report}");

    let mut store = ParamStore::new();
    let teal = Teal::new(
        &mut store,
        &mut rng,
        TealConfig {
            hidden: 8,
            layers: 2,
            policy_hidden: 8,
            tunnels_per_flow: 2,
        },
    );
    let report = analyze_determinism(&teal, &store, &inst);
    assert!(report.is_clean(), "{report}");
    assert!(report.cache.has("cache-unused"), "{report}");
}

/// A HARP whose cached forward head silently drifts from the full
/// forward's: the seeded "cached/full subgraph mismatch" violation.
struct DriftingCachedHarp(Harp);

impl SplitModel for DriftingCachedHarp {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, instance: &Instance) -> Var {
        self.0.forward(tape, store, instance)
    }

    fn name(&self) -> &'static str {
        "HARP-drifting-cache"
    }

    fn precompute_epoch(&self, store: &ParamStore, instance: &Instance) -> Option<EpochCache> {
        self.0.precompute_epoch(store, instance)
    }

    fn forward_cached(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        instance: &Instance,
        cache: &EpochCache,
    ) -> Var {
        let out = self.0.forward_cached(tape, store, instance, cache);
        // The kind of bug this pass exists to catch: an extra op on the
        // cached path only, so cached != full on some (here: all) inputs.
        tape.mul_scalar(out, 1.0 + 1e-3)
    }
}

#[test]
fn seeded_cached_full_subgraph_mismatch_is_detected() {
    let inst = tiny_instance();
    let mut store = ParamStore::new();
    let model = DriftingCachedHarp(tiny_harp(&mut store));
    let report = analyze_determinism(&model, &store, &inst);
    assert!(!report.is_clean(), "{report}");
    assert!(report.cache.has("cache-structure-mismatch"), "{report}");
    let d = report
        .cache
        .diagnostics
        .iter()
        .find(|d| d.code == "cache-structure-mismatch")
        .expect("mismatch diagnostic");
    // The structured report names the offending op on the cached path.
    assert!(
        d.message.contains("mul_scalar"),
        "names the op: {}",
        d.message
    );
    assert!(d.node.is_some(), "anchored to a full-tape node");
}

#[test]
fn seeded_stale_cache_is_detected_as_divergence() {
    let inst = tiny_instance();
    let mut store = ParamStore::new();
    let harp = tiny_harp(&mut store);
    let mut cache = harp
        .precompute_epoch(&store, &inst)
        .expect("HARP has an epoch cache");
    // Stale table: e.g. computed before a checkpoint reload changed the
    // parameters. One ULP is enough — the contract is bitwise.
    let mut data = (*cache.data).clone();
    data[0] = f32::from_bits(data[0].to_bits() ^ 1);
    cache.data = std::sync::Arc::new(data);

    let mut full = Tape::new();
    let full_out = harp.forward(&mut full, &store, &inst);
    let mut cached = Tape::new();
    let cached_out = harp.forward_cached(&mut cached, &store, &inst, &cache);
    let report = harp_verify::check_epoch_cache(&full, full_out, &cached, cached_out, &cache.data);
    assert!(report.has("cache-divergence"), "{report}");
}

#[test]
fn naive_harp_tape_split_has_gradient_aliasing() {
    // Sanity-check the schedule-vetting API against a real model tape: a
    // naive "cut the tape in half" parallel backward schedule for HARP
    // must be rejected (the RAU reuses parameters across the cut, and
    // edges cross it), while the serial schedule certifies clean.
    let inst = tiny_instance();
    let mut store = ParamStore::new();
    let harp = tiny_harp(&mut store);
    let mut tape = Tape::new();
    let out = harp.forward(&mut tape, &store, &inst);
    let loss = harp_core::mlu_loss(&mut tape, out, &inst);

    let n = tape.len();
    let all = 0..n;
    let serial = analyze_grad_aliasing(&tape, loss, Some(&store), std::slice::from_ref(&all));
    assert!(serial.is_clean(), "{serial}");

    let naive = analyze_grad_aliasing(&tape, loss, Some(&store), &[0..n / 2, n / 2..n]);
    assert!(!naive.is_clean(), "a naive split must alias: {naive}");
    assert!(naive.has("grad-alias"), "{naive}");
}
