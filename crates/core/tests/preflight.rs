//! Acceptance tests for the `harp-verify` pre-flight: real HARP / DOTE /
//! TEAL training graphs, built on quickstart-style instances, must analyze
//! with zero Errors; a deliberately broken model must make `train_model`
//! panic in debug builds.

use harp_core::{
    mlu_loss, train_model, Dote, EvalOptions, Harp, HarpConfig, Instance, SplitModel, Teal,
    TealConfig, TrainConfig,
};
use harp_paths::TunnelSet;
use harp_tensor::{ParamStore, Tape, Var};
use harp_topology::Topology;
use harp_traffic::{gravity_series, GravityConfig};
use harp_verify::{analyze, GraphReport, Severity};
use rand::{rngs::StdRng, SeedableRng};

/// The quickstart WAN: a 6-ring with two chords, 3-shortest-path tunnels,
/// one gravity-model snapshot.
fn quickstart_instance() -> Instance {
    let mut topo = Topology::new(6);
    for i in 0..6 {
        topo.add_link(i, (i + 1) % 6, 100.0).expect("ring link");
    }
    topo.add_link(0, 3, 60.0).expect("chord");
    topo.add_link(1, 4, 60.0).expect("chord");
    let edge_nodes: Vec<usize> = (0..topo.num_nodes()).collect();
    let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, 3, 0.0);
    let cfg = GravityConfig::uniform(topo.num_nodes(), 500.0);
    let mut rng = StdRng::seed_from_u64(1);
    let tm = &gravity_series(&cfg, &mut rng, 1)[0];
    Instance::compile(&topo, &tunnels, tm)
}

/// Record one training graph (forward + MLU loss) and analyze it.
fn analyze_model(model: &dyn SplitModel, store: &ParamStore, inst: &Instance) -> GraphReport {
    let mut tape = Tape::new();
    let splits = model.forward(&mut tape, store, inst);
    let loss = mlu_loss(&mut tape, splits, inst);
    analyze(&tape, loss, Some(store))
}

fn assert_zero_errors(name: &str, report: &GraphReport) {
    assert!(
        report.is_clean(),
        "{name} training graph has analyzer errors:\n{}",
        report.summary()
    );
    assert_eq!(
        report.count(Severity::Error),
        0,
        "{name}:\n{}",
        report.summary()
    );
}

#[test]
fn harp_training_graph_is_clean() {
    let inst = quickstart_instance();
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let harp = Harp::new(
        &mut store,
        &mut rng,
        HarpConfig {
            gnn_layers: 2,
            gnn_hidden: 6,
            d_model: 8,
            settrans_layers: 1,
            heads: 2,
            d_ff: 16,
            mlp_hidden: 16,
            rau_iters: 2,
        },
    );
    let report = analyze_model(&harp, &store, &inst);
    assert_zero_errors("HARP", &report);
}

#[test]
fn dote_training_graph_is_clean() {
    let inst = quickstart_instance();
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let dote = Dote::new(&mut store, &mut rng, &inst, &[32, 32]);
    let report = analyze_model(&dote, &store, &inst);
    assert_zero_errors("DOTE", &report);
}

#[test]
fn teal_training_graph_is_clean() {
    let inst = quickstart_instance();
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let teal = Teal::new(&mut store, &mut rng, TealConfig::default());
    let report = analyze_model(&teal, &store, &inst);
    assert_zero_errors("TEAL", &report);
}

/// A model with a parameter the loss can never reach: the pre-flight built
/// into `train_model` must reject it before any gradient step runs.
struct OrphanModel {
    w: harp_tensor::ParamId,
    orphan: harp_tensor::ParamId,
}

impl SplitModel for OrphanModel {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, instance: &Instance) -> Var {
        let _dead = tape.param(store, self.orphan); // injected, never used
        let w = tape.param(store, self.w);
        let s = tape.sigmoid(w);
        tape.broadcast_scalar(s, instance.num_tunnels)
    }

    fn name(&self) -> &'static str {
        "orphan"
    }
}

#[test]
#[should_panic(expected = "pre-flight failed")]
fn train_model_preflight_rejects_unreachable_param() {
    let inst = quickstart_instance();
    let mut store = ParamStore::new();
    let w = store.register("w", vec![], vec![0.0]);
    let orphan = store.register("orphan", vec![2], vec![1.0, 1.0]);
    let model = OrphanModel { w, orphan };
    let refs = vec![(&inst, 1.0)];
    let _ = train_model(
        &model,
        &mut store,
        &refs,
        &[],
        TrainConfig {
            epochs: 1,
            ..Default::default()
        },
        EvalOptions::default(),
    );
}
