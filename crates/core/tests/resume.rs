//! The resumable-training contract, property-tested: interrupting a run
//! at epoch `k` and resuming from its checkpoint must be
//! **bitwise-identical** to the run that was never interrupted — same
//! per-epoch losses and validation scores bit for bit, same selected
//! epoch, same final parameters — at every worker count.

use harp_core::{train_model, EvalOptions, Harp, HarpConfig, Instance, TrainConfig, TrainReport};
use harp_opt::MluOracle;
use harp_paths::TunnelSet;
use harp_tensor::ParamStore;
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const EPOCHS: usize = 4;

fn diamond() -> (Topology, TunnelSet) {
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, 10.0).unwrap();
    topo.add_link(1, 3, 10.0).unwrap();
    topo.add_link(0, 2, 20.0).unwrap();
    topo.add_link(2, 3, 20.0).unwrap();
    let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);
    (topo, tunnels)
}

type Labeled = Vec<(Instance, f64)>;

fn dataset(seed: u64) -> (Labeled, Labeled) {
    let (topo, tunnels) = diamond();
    let mut rng = StdRng::seed_from_u64(seed);
    let oracle = MluOracle::default();
    let make = |rng: &mut StdRng| {
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, rng.gen_range(5.0..15.0));
        tm.set_demand(3, 0, rng.gen_range(2.0..8.0));
        let inst = Instance::compile(&topo, &tunnels, &tm);
        let opt = oracle.solve(&inst.program).mlu;
        (inst, opt)
    };
    let train: Vec<(Instance, f64)> = (0..9).map(|_| make(&mut rng)).collect();
    let val: Vec<(Instance, f64)> = (0..3).map(|_| make(&mut rng)).collect();
    (train, val)
}

fn fresh_model(seed: u64) -> (Harp, ParamStore) {
    let mut store = ParamStore::new();
    let mut mrng = StdRng::seed_from_u64(seed);
    let cfg = HarpConfig {
        gnn_layers: 1,
        gnn_hidden: 4,
        d_model: 8,
        settrans_layers: 1,
        heads: 1,
        d_ff: 8,
        mlp_hidden: 8,
        rau_iters: 1,
    };
    let harp = Harp::new(&mut store, &mut mrng, cfg);
    (harp, store)
}

fn cfg_with(workers: usize, epochs: usize, dir: Option<std::path::PathBuf>) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 4,
        lr: 5e-3,
        patience: 0, // fixed epoch count: interrupt points are predictable
        workers,
        checkpoint_dir: dir,
        checkpoint_every: 1,
        ..Default::default()
    }
}

/// Train for `epochs` epochs (optionally checkpointing into `dir`) on a
/// fresh, identically-seeded model and dataset; return the report and the
/// final parameter values.
fn run(
    seed: u64,
    workers: usize,
    epochs: usize,
    dir: Option<std::path::PathBuf>,
) -> (TrainReport, Vec<Vec<f32>>) {
    let (train, val) = dataset(seed);
    let train_refs: Vec<(&Instance, f64)> = train.iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = val.iter().map(|(i, o)| (i, *o)).collect();
    let (harp, mut store) = fresh_model(seed ^ 0xA5);
    let report = train_model(
        &harp,
        &mut store,
        &train_refs,
        &val_refs,
        cfg_with(workers, epochs, dir),
        EvalOptions::default(),
    )
    .expect("healthy training run");
    (report, store.snapshot())
}

fn assert_bitwise_equal(resumed: &TrainReport, straight: &TrainReport, ctx: &str) {
    assert_eq!(resumed.best_epoch, straight.best_epoch, "{ctx}: best_epoch");
    assert_eq!(
        resumed.best_val.to_bits(),
        straight.best_val.to_bits(),
        "{ctx}: best_val bits"
    );
    assert_eq!(
        resumed.history.len(),
        straight.history.len(),
        "{ctx}: history length"
    );
    for (r, s) in resumed.history.iter().zip(&straight.history) {
        assert_eq!(r.epoch, s.epoch, "{ctx}: epoch index");
        assert_eq!(
            r.train_loss.to_bits(),
            s.train_loss.to_bits(),
            "{ctx}: epoch {} train loss bits",
            r.epoch
        );
        assert_eq!(
            r.val_norm_mlu.to_bits(),
            s.val_norm_mlu.to_bits(),
            "{ctx}: epoch {} val bits",
            r.epoch
        );
    }
}

/// Interrupt at epoch `k` (run only `k` epochs, checkpointing each), then
/// resume to the full count, and compare against a straight-through run.
fn check_interrupt_resume(seed: u64, workers: usize, interrupt_at: usize) {
    let dir = std::env::temp_dir().join(format!(
        "harp_core_resume_{seed}_{workers}_{interrupt_at}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let (straight, straight_params) = run(seed, workers, EPOCHS, None);

    // Phase 1: the "interrupted" run — stops after `interrupt_at` epochs,
    // leaving a snapshot behind.
    let _ = run(seed, workers, interrupt_at, Some(dir.clone()));
    // Phase 2: resume to the full epoch count from the same directory.
    let (resumed, resumed_params) = run(seed, workers, EPOCHS, Some(dir.clone()));

    assert_eq!(
        resumed.resumed_from,
        Some(interrupt_at),
        "resume must pick up at the interrupt point"
    );
    assert_bitwise_equal(&resumed, &straight, "resumed vs straight-through");
    assert_eq!(
        straight_params.len(),
        resumed_params.len(),
        "param buffer count"
    );
    for (i, (a, b)) in straight_params.iter().zip(&resumed_params).enumerate() {
        assert_eq!(a.len(), b.len(), "param {i} width");
        for (j, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "param {i}[{j}]: straight {x} vs resumed {y}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Interrupt-at-k then resume is bitwise-identical to never stopping,
    /// across interrupt points and both serial and 4-worker pools.
    #[test]
    fn interrupt_and_resume_is_bitwise_identical(
        seed in 0u64..1000,
        interrupt_at in 1usize..EPOCHS,
    ) {
        for workers in [1usize, 4] {
            check_interrupt_resume(seed, workers, interrupt_at);
        }
    }
}

/// The warm-start contract: `TrainConfig::warm_start_from(snapshot)` must
/// be bitwise-identical — report and final parameters — to manually
/// loading the snapshot's selected parameters into a fresh store and
/// training from scratch, at worker counts 1 and 4. Only the donor's
/// parameters transfer; optimizer moments, RNG, and early-stop state all
/// start fresh.
#[test]
fn warm_start_matches_fresh_train_from_params_bitwise() {
    let dir = std::env::temp_dir().join(format!("harp_core_warmstart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Donor run on one dataset, leaving a snapshot behind.
    let _ = run(7, 1, EPOCHS, Some(dir.clone()));
    let snap_path = dir.join(harp_core::SNAPSHOT_FILE);
    assert!(snap_path.exists(), "donor run must leave a snapshot");

    // Fine-tune on a *different* dataset (the drifted-topology story).
    let (train, val) = dataset(11);
    let train_refs: Vec<(&Instance, f64)> = train.iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = val.iter().map(|(i, o)| (i, *o)).collect();

    for workers in [1usize, 4] {
        // (a) the helper under test
        let (harp, mut store_a) = fresh_model(7 ^ 0xA5);
        let cfg = cfg_with(workers, EPOCHS, None).warm_start_from(&snap_path);
        let report_a = train_model(
            &harp,
            &mut store_a,
            &train_refs,
            &val_refs,
            cfg,
            EvalOptions::default(),
        )
        .expect("warm-started run");
        assert_eq!(report_a.resumed_from, None, "warm start is not a resume");

        // (b) the reference: load the donor's selected params by hand,
        // then train with a completely fresh config
        let (harp_b, mut store_b) = fresh_model(7 ^ 0xA5);
        let snap = harp_nn::load_snapshot(&mut store_b, &snap_path).expect("readable snapshot");
        store_b.restore(&snap.best_params);
        let report_b = train_model(
            &harp_b,
            &mut store_b,
            &train_refs,
            &val_refs,
            cfg_with(workers, EPOCHS, None),
            EvalOptions::default(),
        )
        .expect("fresh-from-params run");

        assert_bitwise_equal(
            &report_a,
            &report_b,
            &format!("warm start vs fresh-from-params ({workers} workers)"),
        );
        for (i, (a, b)) in store_a
            .snapshot()
            .iter()
            .zip(&store_b.snapshot())
            .enumerate()
        {
            for (j, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{workers} workers: param {i}[{j}] diverged"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A resumed run that has nothing left to do (snapshot already at the
/// target epoch count) returns the recorded history untouched and leaves
/// the best parameters in the store.
#[test]
fn resume_with_no_remaining_epochs_is_a_noop() {
    let dir = std::env::temp_dir().join(format!("harp_core_resume_noop_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (first, _) = run(3, 1, EPOCHS, Some(dir.clone()));
    let (again, _) = run(3, 1, EPOCHS, Some(dir.clone()));
    assert_eq!(again.resumed_from, Some(EPOCHS));
    assert_bitwise_equal(&again, &first, "noop resume vs original");
    let _ = std::fs::remove_dir_all(&dir);
}
