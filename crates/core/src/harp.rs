//! The HARP model (§3 of the paper).
//!
//! Pipeline per instance:
//!
//! 1. **GCN edge embeddings** (§3.3): node features (adjacent capacity,
//!    degree) run through a small GCN stack; per-layer node embeddings are
//!    concatenated (Fig 14). The embedding of edge `(i, j)` is the *sum* of
//!    the two node embeddings concatenated with the edge capacity — so
//!    `h_ij == h_ji` exactly when `C_ij == C_ji` — projected to the model
//!    width.
//! 2. **SETTRANS tunnel embeddings** (§3.4): each tunnel is the *set* of
//!    its edges' embeddings plus a learned CLS vector; a transformer
//!    encoder **without positional encodings** produces edge-conditioned
//!    ("edge-tunnel") embeddings and the CLS row is the tunnel embedding.
//! 3. **MLP1 initial splits**: tunnel embedding ⊕ demand → unnormalized
//!    split logit `u`, the same MLP applied to every tunnel.
//! 4. **RAU refinement** (§3.5): `rau_iters` times, compute per-flow
//!    softmax splits, link utilizations, the network MLU and each tunnel's
//!    bottleneck link; feed (bottleneck edge-tunnel embedding, bottleneck
//!    utilization, MLU, demand) to the shared RAU MLP, whose output is
//!    *added* to the logits. A final softmax yields the splits.
//!
//! `rau_iters = 0` is the paper's HARP-NoRAU ablation.

use harp_nn::{Activation, GcnConv, Linear, Mlp, TransformerEncoder};
use harp_tensor::{ParamId, ParamStore, Tape, Var};
use rand::Rng;

use crate::loss::utilization;
use crate::{Instance, SplitModel};

/// Architecture hyperparameters (defaults follow the paper's small-model
/// regime — the AnonNet model selected in validation has ~21K parameters).
#[derive(Clone, Copy, Debug)]
pub struct HarpConfig {
    /// GCN layers (paper searches 2, 3, 6).
    pub gnn_layers: usize,
    /// GCN hidden width per layer.
    pub gnn_hidden: usize,
    /// Model width r (edge/tunnel embedding dim; must be divisible by
    /// `heads`).
    pub d_model: usize,
    /// SETTRANS encoder layers (paper searches 2, 3).
    pub settrans_layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// SETTRANS feed-forward width.
    pub d_ff: usize,
    /// Hidden width of MLP1 and the RAU MLP.
    pub mlp_hidden: usize,
    /// RAU recursions (paper searches 3, 7, 14; 0 = HARP-NoRAU).
    pub rau_iters: usize,
}

impl Default for HarpConfig {
    fn default() -> Self {
        HarpConfig {
            gnn_layers: 2,
            gnn_hidden: 8,
            d_model: 16,
            settrans_layers: 2,
            heads: 2,
            d_ff: 32,
            mlp_hidden: 32,
            rau_iters: 7,
        }
    }
}

impl HarpConfig {
    /// The HARP-NoRAU ablation of this config.
    pub fn no_rau(mut self) -> Self {
        self.rau_iters = 0;
        self
    }
}

/// The HARP model. Holds parameter handles into a [`ParamStore`]; the same
/// four modules (GNN, SETTRANS, MLP1, RAU) are shared across all edges,
/// tunnels and recursions.
#[derive(Clone, Debug)]
pub struct Harp {
    cfg: HarpConfig,
    gnn: Vec<GcnConv>,
    edge_proj: Linear,
    settrans: TransformerEncoder,
    mlp1: Mlp,
    rau: Mlp,
    cls: ParamId,
}

impl Harp {
    /// Construct with freshly-initialized parameters registered in `store`.
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, cfg: HarpConfig) -> Self {
        assert!(cfg.gnn_layers >= 1 && cfg.d_model.is_multiple_of(cfg.heads));
        let mut gnn = Vec::with_capacity(cfg.gnn_layers);
        let mut in_dim = 2;
        for l in 0..cfg.gnn_layers {
            gnn.push(GcnConv::new(
                store,
                rng,
                &format!("harp.gnn.{l}"),
                in_dim,
                cfg.gnn_hidden,
                Activation::Tanh,
            ));
            in_dim = cfg.gnn_hidden;
        }
        // node embedding = concat of all layer outputs; edge embedding =
        // sum of endpoints' node embeddings ⊕ capacity, projected to r.
        let node_dim = cfg.gnn_hidden * cfg.gnn_layers;
        let edge_proj = Linear::new(
            store,
            rng,
            "harp.edge_proj",
            node_dim + 1,
            cfg.d_model,
            true,
        );
        let settrans = TransformerEncoder::new(
            store,
            rng,
            "harp.settrans",
            cfg.settrans_layers,
            cfg.d_model,
            cfg.heads,
            cfg.d_ff,
        );
        let mlp1 = Mlp::new(
            store,
            rng,
            "harp.mlp1",
            &[cfg.d_model + 1, cfg.mlp_hidden, 1],
            Activation::LeakyRelu(0.01),
            Activation::Identity,
        );
        let rau = Mlp::new(
            store,
            rng,
            "harp.rau",
            &[cfg.d_model + 4, cfg.mlp_hidden, 1],
            Activation::LeakyRelu(0.01),
            Activation::Identity,
        );
        let cls = store.register(
            "harp.cls",
            vec![1, cfg.d_model],
            harp_nn::xavier_vec(rng, 1, cfg.d_model),
        );
        Harp {
            cfg,
            gnn,
            edge_proj,
            settrans,
            mlp1,
            rau,
            cls,
        }
    }

    /// The configured hyperparameters.
    pub fn config(&self) -> HarpConfig {
        self.cfg
    }

    /// A view of the same trained parameters running `n` RAU recursions.
    ///
    /// The RAU is a *shared-parameter* fixed-point improver, so inference
    /// may iterate more (or less) than training did — the alignment
    /// property §3.5 leans on. Useful for the RAU-depth ablation.
    pub fn with_rau_iters(&self, n: usize) -> Harp {
        let mut m = self.clone();
        m.cfg.rau_iters = n;
        m
    }

    /// Edge embeddings `[E, d_model]` (stage 1).
    fn edge_embeddings(&self, t: &mut Tape, s: &ParamStore, inst: &Instance) -> Var {
        let adj = t.constant(vec![inst.num_nodes, inst.num_nodes], inst.adj_norm.clone());
        let mut x = t.constant(vec![inst.num_nodes, 2], inst.node_feats.clone());
        let mut layer_outs = Vec::with_capacity(self.gnn.len());
        for layer in &self.gnn {
            x = layer.forward(t, s, adj, x);
            layer_outs.push(x);
        }
        let node_emb = if layer_outs.len() == 1 {
            layer_outs[0]
        } else {
            t.concat_cols(&layer_outs)
        };
        let src_emb = t.gather_rows(node_emb, inst.edge_src.clone());
        let dst_emb = t.gather_rows(node_emb, inst.edge_dst.clone());
        let sum = t.add(src_emb, dst_emb);
        let caps = t.constant(vec![inst.num_edges, 1], inst.edge_caps.clone());
        let with_cap = t.concat_cols(&[sum, caps]);
        self.edge_proj.forward(t, s, with_cap)
    }

    /// Stage 2: SETTRANS over padded tunnel sequences. Returns the flat
    /// `[T * seq_len, d_model]` edge-tunnel embedding table.
    fn tunnel_table(&self, t: &mut Tape, s: &ParamStore, inst: &Instance, edge_emb: Var) -> Var {
        let cls = t.param(s, self.cls);
        let table = t.concat_rows(&[cls, edge_emb]); // row 0 = CLS
        let seqs = t.gather_rows(table, inst.seq_index.clone());
        let seqs3 = t.reshape(seqs, vec![inst.num_tunnels, inst.seq_len, self.cfg.d_model]);
        let out = self
            .settrans
            .forward(t, s, seqs3, Some(inst.score_mask.clone()));
        t.reshape(out, vec![inst.num_tunnels * inst.seq_len, self.cfg.d_model])
    }

    /// Stages 3–4 (MLP1 + RAU + final softmax) from an edge-tunnel
    /// embedding `table`. This is the only part of the forward pass that
    /// reads the traffic matrix, which is what makes the per-epoch
    /// embedding cache sound.
    fn head(&self, t: &mut Tape, s: &ParamStore, inst: &Instance, table: TableSrc<'_>) -> Var {
        let demand_col = t.constant_slice(vec![inst.num_tunnels, 1], &inst.tunnel_demand);
        let mut u = {
            let _mlp1 = harp_obs::span("harp.mlp1");
            // tunnel embeddings = CLS rows (position 0 of each sequence)
            let cls_rows: Vec<usize> = (0..inst.num_tunnels).map(|i| i * inst.seq_len).collect();
            let tunnel_emb = table.rows(t, cls_rows, self.cfg.d_model);

            let mlp1_in = t.concat_cols(&[tunnel_emb, demand_col]);
            let u0 = self.mlp1.forward(t, s, mlp1_in);
            t.reshape(u0, vec![inst.num_tunnels])
        };

        let _rau = harp_obs::span("harp.rau");
        for _ in 0..self.cfg.rau_iters {
            let w = t.segment_softmax(u, inst.tunnel_flow.clone(), inst.num_flows);
            let utils = utilization(t, w, inst);
            let mlu = t.max_all(utils);

            // per-tunnel bottleneck: max utilization over the tunnel's edges
            let pair_util = t.gather_rows(utils, inst.pair_edge.clone());
            let bott_util = t.segment_max(pair_util, inst.pair_tunnel.clone(), inst.num_tunnels);
            // data-dependent gather of the bottleneck edge-tunnel embedding
            let argmax_pairs = t.segment_argmax_of(bott_util).to_vec();
            let bott_rows: Vec<usize> = argmax_pairs.iter().map(|&p| inst.pair_row[p]).collect();
            let bott_emb = table.rows(t, bott_rows, self.cfg.d_model);

            // Utilizations can reach ~1e7 on failed (capacity-floored)
            // links; feed the RAU log-compressed magnitudes plus the
            // *bounded* ratio U(l)/MLU — "RAU compares the network-wide
            // MLU with U(l)" (§3.5) — so the comparison signal stays well
            // conditioned regardless of failure severity.
            let bott_log = {
                let p1 = t.add_scalar(bott_util, 1.0);
                let l = t.ln(p1);
                t.reshape(l, vec![inst.num_tunnels, 1])
            };
            let mlu_log = {
                let p1 = t.add_scalar(mlu, 1.0);
                let l = t.ln(p1);
                let v = t.broadcast_scalar(l, inst.num_tunnels);
                t.reshape(v, vec![inst.num_tunnels, 1])
            };
            let ratio = {
                let inv_mlu = t.recip(mlu, 1e-9);
                let inv_vec = t.broadcast_scalar(inv_mlu, inst.num_tunnels);
                let r = t.mul(bott_util, inv_vec);
                t.reshape(r, vec![inst.num_tunnels, 1])
            };
            let rau_in = t.concat_cols(&[bott_emb, bott_log, mlu_log, ratio, demand_col]);
            let delta = self.rau.forward(t, s, rau_in);
            let delta = t.reshape(delta, vec![inst.num_tunnels]);
            u = t.add(u, delta);
        }

        t.segment_softmax(u, inst.tunnel_flow.clone(), inst.num_flows)
    }
}

/// Where [`Harp::head`] reads the edge-tunnel embedding table from: a live
/// tape node (training — gradients flow back through the gathers into the
/// set transformer) or the host-side epoch cache (serving — constants get
/// no gradient anyway). Both routes copy identical bytes row-by-row, so
/// the forward values are bitwise-equal; the host route never materializes
/// the full `[T * seq_len, d_model]` table as a tape leaf, copying only
/// the rows each RAU iteration actually touches.
enum TableSrc<'a> {
    Tape(Var),
    Host(&'a crate::EpochCache),
}

impl TableSrc<'_> {
    fn rows(&self, t: &mut Tape, rows: Vec<usize>, w: usize) -> Var {
        match self {
            TableSrc::Tape(v) => t.gather_rows(*v, std::sync::Arc::new(rows)),
            TableSrc::Host(c) => t.constant_rows(&c.data, w, &rows),
        }
    }
}

impl SplitModel for Harp {
    fn forward(&self, t: &mut Tape, s: &ParamStore, inst: &Instance) -> Var {
        let edge_emb = {
            let _gcn = harp_obs::span("harp.gcn");
            self.edge_embeddings(t, s, inst)
        };
        let table = {
            let _st = harp_obs::span("harp.settrans");
            self.tunnel_table(t, s, inst, edge_emb)
        };
        self.head(t, s, inst, TableSrc::Tape(table))
    }

    /// HARP's stages 1–2 (GCN + set transformer) read only the topology
    /// and tunnel tensors of `inst`, so the resulting edge-tunnel
    /// embedding table is cacheable across every TM of an epoch — and it
    /// dominates forward cost, so serving re-runs only the cheap head.
    fn precompute_epoch(&self, s: &ParamStore, inst: &Instance) -> Option<crate::EpochCache> {
        let _span = harp_obs::span("harp.precompute_epoch");
        let mut t = Tape::new();
        let edge_emb = self.edge_embeddings(&mut t, s, inst);
        let table = self.tunnel_table(&mut t, s, inst, edge_emb);
        Some(crate::EpochCache {
            data: std::sync::Arc::new(t.value(table).to_vec()),
            shape: vec![inst.num_tunnels * inst.seq_len, self.cfg.d_model],
        })
    }

    fn forward_cached(
        &self,
        t: &mut Tape,
        s: &ParamStore,
        inst: &Instance,
        cache: &crate::EpochCache,
    ) -> Var {
        self.head(t, s, inst, TableSrc::Host(cache))
    }

    fn name(&self) -> &'static str {
        if self.cfg.rau_iters == 0 {
            "HARP-NoRAU"
        } else {
            "HARP"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mlu_loss;
    use harp_paths::TunnelSet;
    use harp_topology::Topology;
    use harp_traffic::TrafficMatrix;
    use rand::{rngs::StdRng, SeedableRng};

    fn diamond_instance() -> Instance {
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 3, 10.0).unwrap();
        topo.add_link(0, 2, 20.0).unwrap();
        topo.add_link(2, 3, 20.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, 12.0);
        tm.set_demand(3, 0, 6.0);
        Instance::compile(&topo, &tunnels, &tm)
    }

    fn small_cfg() -> HarpConfig {
        HarpConfig {
            gnn_layers: 2,
            gnn_hidden: 4,
            d_model: 8,
            settrans_layers: 1,
            heads: 1,
            d_ff: 16,
            mlp_hidden: 16,
            rau_iters: 3,
        }
    }

    #[test]
    fn forward_produces_valid_splits() {
        let inst = diamond_instance();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let harp = Harp::new(&mut store, &mut rng, small_cfg());
        let mut t = Tape::new();
        let splits = harp.forward(&mut t, &store, &inst);
        let s: Vec<f64> = t.value(splits).iter().map(|&x| x as f64).collect();
        assert!(inst.program.splits_are_valid(&s, 1e-4), "splits {s:?}");
    }

    #[test]
    fn training_step_reduces_loss() {
        let inst = diamond_instance();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let harp = Harp::new(&mut store, &mut rng, small_cfg());
        let loss_of = |store: &ParamStore| {
            let mut t = Tape::new();
            let splits = harp.forward(&mut t, store, &inst);
            let l = mlu_loss(&mut t, splits, &inst);
            (t, l)
        };
        let (t0, l0) = loss_of(&store);
        let before = t0.scalar_value(l0);
        let mut opt = harp_nn::Adam::new(&store, harp_nn::AdamConfig::with_lr(5e-3));
        for _ in 0..30 {
            let (t, l) = loss_of(&store);
            store.zero_grads();
            t.backward(l, &mut store);
            opt.step_and_zero(&mut store);
        }
        let (t1, l1) = loss_of(&store);
        assert!(
            t1.scalar_value(l1) < before,
            "{} !< {}",
            t1.scalar_value(l1),
            before
        );
    }

    #[test]
    fn node_relabeling_invariance() {
        // Build the same network with permuted node ids; the per-tunnel
        // splits must be identical for corresponding tunnels.
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 3, 10.0).unwrap();
        topo.add_link(0, 2, 20.0).unwrap();
        topo.add_link(2, 3, 20.0).unwrap();
        let perm = vec![2usize, 3, 1, 0];
        let ptopo = topo.permute_nodes(&perm).unwrap();

        let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);
        let edge_nodes_p: Vec<usize> = vec![perm[0], perm[3]];
        let ptunnels = TunnelSet::k_shortest(&ptopo, &edge_nodes_p, 2, 0.0);

        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, 12.0);
        tm.set_demand(3, 0, 6.0);
        let ptm = tm.permute(&perm);

        let inst = Instance::compile(&topo, &tunnels, &tm);
        let pinst = Instance::compile(&ptopo, &ptunnels, &ptm);

        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let harp = Harp::new(&mut store, &mut rng, small_cfg());

        let run = |inst: &Instance| {
            let mut t = Tape::new();
            let s = harp.forward(&mut t, &store, inst);
            t.value(s).to_vec()
        };
        let a = run(&inst);
        let b = run(&pinst);

        // match tunnels across instances by their (permuted) node sequence
        let seq_a = tunnels.node_sequences(&topo);
        let seq_b = ptunnels.node_sequences(&ptopo);
        for (i, sa) in seq_a.iter().enumerate() {
            let mapped: Vec<usize> = sa.iter().map(|&n| perm[n]).collect();
            let j = seq_b
                .iter()
                .position(|sb| *sb == mapped)
                .expect("tunnel exists in permuted instance");
            assert!(
                (a[i] - b[j]).abs() < 1e-4,
                "tunnel {i}: {} vs {}",
                a[i],
                b[j]
            );
        }
    }

    #[test]
    fn tunnel_reordering_invariance() {
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 3, 10.0).unwrap();
        topo.add_link(0, 2, 20.0).unwrap();
        topo.add_link(2, 3, 20.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let shuffled = tunnels.shuffled(&mut rng);

        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, 12.0);
        tm.set_demand(3, 0, 6.0);

        let inst = Instance::compile(&topo, &tunnels, &tm);
        let sinst = Instance::compile(&topo, &shuffled, &tm);

        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let harp = Harp::new(&mut store, &mut rng, small_cfg());

        let mut t1 = Tape::new();
        let s1 = harp.forward(&mut t1, &store, &inst);
        let mut t2 = Tape::new();
        let s2 = harp.forward(&mut t2, &store, &sinst);

        let seq_a = tunnels.node_sequences(&topo);
        let seq_b = shuffled.node_sequences(&topo);
        for (i, sa) in seq_a.iter().enumerate() {
            let j = seq_b.iter().position(|sb| sb == sa).unwrap();
            assert!(
                (t1.value(s1)[i] - t2.value(s2)[j]).abs() < 1e-5,
                "tunnel {i}"
            );
        }
    }

    #[test]
    fn norau_has_fewer_graph_ops() {
        let inst = diamond_instance();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let harp = Harp::new(&mut store, &mut rng, small_cfg());
        let mut store2 = ParamStore::new();
        let mut rng2 = StdRng::seed_from_u64(5);
        let norau = Harp::new(&mut store2, &mut rng2, small_cfg().no_rau());
        assert_eq!(norau.name(), "HARP-NoRAU");
        assert_eq!(harp.name(), "HARP");

        let mut t1 = Tape::new();
        let _ = harp.forward(&mut t1, &store, &inst);
        let mut t2 = Tape::new();
        let _ = norau.forward(&mut t2, &store2, &inst);
        assert!(t2.len() < t1.len());
    }

    #[test]
    fn param_count_is_small() {
        // sanity: the default config stays in the paper's "tiny model"
        // regime (paper: 21K params for AnonNet's selected model)
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let _ = Harp::new(&mut store, &mut rng, HarpConfig::default());
        assert!(
            store.num_scalars() < 60_000,
            "params = {}",
            store.num_scalars()
        );
    }
}
