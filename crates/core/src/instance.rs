//! Instance compilation: one snapshot, ready for both the neural models
//! (f32 index tensors, shared via `Arc` across tape builds) and the exact
//! evaluators (`f64` path program).

use std::sync::Arc;

use harp_nn::{expand_key_mask, normalized_adjacency};
use harp_opt::PathProgram;
use harp_paths::TunnelSet;
use harp_topology::{node_features, Topology};
use harp_traffic::TrafficMatrix;

/// A compiled snapshot. Build once with [`Instance::compile`], reuse across
/// every forward pass (index arrays are `Arc`-shared into the tapes).
#[derive(Clone, Debug)]
pub struct Instance {
    /// Nodes in the (universe) topology.
    pub num_nodes: usize,
    /// Directed edges.
    pub num_edges: usize,
    /// Flows (ordered source/destination pairs with tunnels).
    pub num_flows: usize,
    /// Total tunnels across flows.
    pub num_tunnels: usize,
    /// Padded tunnel sequence length **including** the CLS slot.
    pub seq_len: usize,

    /// Dense `n x n` symmetric-normalized adjacency for the GCN.
    pub adj_norm: Vec<f32>,
    /// `[n, 2]` node features (total adjacent capacity, degree).
    pub node_feats: Vec<f32>,
    /// Source node of each edge.
    pub edge_src: Arc<Vec<usize>>,
    /// Destination node of each edge.
    pub edge_dst: Arc<Vec<usize>>,
    /// Edge capacities in *scaled* units (divided by the mean capacity).
    pub edge_caps: Vec<f32>,
    /// `1 / capacity` in scaled units (clamped for the zero-cap floor).
    pub edge_inv_caps: Vec<f32>,
    /// The scale factor: original capacity units per scaled unit.
    pub cap_unit: f64,

    /// Flow demands in scaled units.
    pub flow_demands: Vec<f32>,
    /// Tunnel -> flow index (segment ids for the per-flow softmax).
    pub tunnel_flow: Arc<Vec<usize>>,
    /// Demand of each tunnel's flow (scaled), `[T]`.
    pub tunnel_demand: Vec<f32>,

    /// `[T * seq_len]` index into the `[1 + E]`-row embedding table
    /// (row 0 = CLS, row e+1 = edge e); padding slots point at row 0 and
    /// are masked out.
    pub seq_index: Arc<Vec<usize>>,
    /// `[T, seq_len]` key validity mask (1 = CLS or real edge, 0 = pad).
    pub key_mask: Vec<f32>,
    /// Pre-expanded `[T, seq_len, seq_len]` attention score mask.
    pub score_mask: Arc<Vec<f32>>,

    /// Incidence pairs (tunnel, edge): pair -> tunnel.
    pub pair_tunnel: Arc<Vec<usize>>,
    /// Incidence pairs: pair -> edge.
    pub pair_edge: Arc<Vec<usize>>,
    /// Incidence pairs: pair -> flat row `t * seq_len + pos` in the
    /// set-transformer output (for bottleneck edge-tunnel embeddings).
    pub pair_row: Arc<Vec<usize>>,

    /// Exact-arithmetic program for evaluation/normalization.
    pub program: PathProgram,
}

impl Instance {
    /// Compile a snapshot. `topo` must already carry the snapshot's
    /// capacities; `tunnels` must have been computed on (a version of) this
    /// topology; `tm` is indexed by `topo` node ids.
    pub fn compile(topo: &Topology, tunnels: &TunnelSet, tm: &TrafficMatrix) -> Instance {
        let n = topo.num_nodes();
        let m = topo.num_edges();
        let num_flows = tunnels.num_flows();
        let num_tunnels = tunnels.num_tunnels();
        assert!(num_tunnels > 0, "instance needs at least one tunnel");

        let program = PathProgram::new(topo, tunnels, tm);

        // capacity scaling
        let caps: Vec<f64> = topo.capacities();
        let mean_cap = {
            let pos: Vec<f64> = caps.iter().copied().filter(|c| *c > 1e-3).collect();
            if pos.is_empty() {
                1.0
            } else {
                pos.iter().sum::<f64>() / pos.len() as f64
            }
        };
        let edge_caps: Vec<f32> = caps.iter().map(|c| (c / mean_cap) as f32).collect();
        let edge_inv_caps: Vec<f32> = edge_caps.iter().map(|c| 1.0 / c.max(1e-9)).collect();

        let edge_src: Vec<usize> = topo.edges().iter().map(|e| e.src).collect();
        let edge_dst: Vec<usize> = topo.edges().iter().map(|e| e.dst).collect();

        // flows and demands
        let flow_demands: Vec<f32> = tunnels
            .flows()
            .iter()
            .map(|&(s, t)| (tm.demand(s, t) / mean_cap) as f32)
            .collect();
        let mut tunnel_flow = Vec::with_capacity(num_tunnels);
        let mut tunnel_demand = Vec::with_capacity(num_tunnels);
        for (f, _, _) in tunnels.iter_flat() {
            tunnel_flow.push(f);
            tunnel_demand.push(flow_demands[f]);
        }

        // padded tunnel sequences (+1 for the CLS slot at position 0)
        let max_len = tunnels.max_tunnel_len();
        let seq_len = max_len + 1;
        let mut seq_index = vec![0usize; num_tunnels * seq_len];
        let mut key_mask = vec![0.0f32; num_tunnels * seq_len];
        let mut pair_tunnel = Vec::new();
        let mut pair_edge = Vec::new();
        let mut pair_row = Vec::new();
        for (t_idx, (_, _, path)) in tunnels.iter_flat().enumerate() {
            key_mask[t_idx * seq_len] = 1.0; // CLS
            for (pos, &e) in path.0.iter().enumerate() {
                let slot = t_idx * seq_len + pos + 1;
                seq_index[slot] = e + 1;
                key_mask[slot] = 1.0;
                pair_tunnel.push(t_idx);
                pair_edge.push(e);
                pair_row.push(slot);
            }
        }
        let score_mask = expand_key_mask(&key_mask, num_tunnels, seq_len);

        Instance {
            num_nodes: n,
            num_edges: m,
            num_flows,
            num_tunnels,
            seq_len,
            adj_norm: normalized_adjacency(
                n,
                &topo
                    .edges()
                    .iter()
                    .map(|e| (e.src, e.dst))
                    .collect::<Vec<_>>(),
            ),
            node_feats: node_features(topo),
            edge_src: Arc::new(edge_src),
            edge_dst: Arc::new(edge_dst),
            edge_caps,
            edge_inv_caps,
            cap_unit: mean_cap,
            flow_demands,
            tunnel_flow: Arc::new(tunnel_flow),
            tunnel_demand,
            seq_index: Arc::new(seq_index),
            key_mask,
            score_mask: Arc::new(score_mask),
            pair_tunnel: Arc::new(pair_tunnel),
            pair_edge: Arc::new(pair_edge),
            pair_row: Arc::new(pair_row),
            program,
        }
    }

    /// Number of (tunnel, edge) incidence pairs.
    pub fn num_pairs(&self) -> usize {
        self.pair_edge.len()
    }

    /// Tunnels-per-flow counts.
    pub fn tunnels_per_flow(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_flows];
        for &f in self.tunnel_flow.iter() {
            counts[f] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_instance() -> Instance {
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 2, 10.0).unwrap();
        topo.add_link(2, 3, 10.0).unwrap();
        topo.add_link(3, 0, 10.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 2], 2, 0.0);
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 2, 4.0);
        tm.set_demand(2, 0, 2.0);
        Instance::compile(&topo, &tunnels, &tm)
    }

    #[test]
    fn dimensions() {
        let inst = square_instance();
        assert_eq!(inst.num_nodes, 4);
        assert_eq!(inst.num_edges, 8);
        assert_eq!(inst.num_flows, 2);
        assert_eq!(inst.num_tunnels, 4);
        assert_eq!(inst.seq_len, 3); // 2-hop max + CLS
        assert_eq!(inst.num_pairs(), 8); // each tunnel has 2 edges
        assert_eq!(inst.tunnels_per_flow(), vec![2, 2]);
    }

    #[test]
    fn capacity_scaling_preserves_utilization() {
        let inst = square_instance();
        // scaled demand / scaled cap == raw demand / raw cap
        let raw_ratio = 4.0 / 10.0;
        let f = inst.flow_demands[0] / inst.edge_caps[0];
        assert!((f as f64 - raw_ratio).abs() < 1e-6);
    }

    #[test]
    fn seq_index_points_at_real_edges() {
        let inst = square_instance();
        for t in 0..inst.num_tunnels {
            // CLS slot
            assert_eq!(inst.seq_index[t * inst.seq_len], 0);
            assert_eq!(inst.key_mask[t * inst.seq_len], 1.0);
        }
        // every pair row is a valid masked-in slot
        for (&row, &e) in inst.pair_row.iter().zip(inst.pair_edge.iter()) {
            assert_eq!(inst.key_mask[row], 1.0);
            assert_eq!(inst.seq_index[row], e + 1);
        }
    }

    #[test]
    fn program_matches_instance_layout() {
        let inst = square_instance();
        assert_eq!(inst.program.num_tunnels(), inst.num_tunnels);
        assert_eq!(inst.program.num_edges, inst.num_edges);
        let uni = inst.program.uniform_splits();
        assert!(inst.program.mlu(&uni) > 0.0);
    }
}
