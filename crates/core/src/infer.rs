//! Single-instance inference: the one entry point that turns a compiled
//! [`Instance`] plus a trained [`ParamStore`] into per-tunnel splits.
//!
//! Factored out of evaluation so the offline figure harness
//! ([`crate::evaluate_model`]) and the online serving layer (`harp-serve`)
//! share one code path: forward pass on a fresh tape, per-flow softmax
//! normalization guard, optional local rescaling around failed links, and
//! the exact `f64` MLU — with an explicit finiteness check callers on the
//! request path can act on instead of shipping NaN splits to routers.

use harp_tensor::{ParamStore, Tape};

use crate::eval::EvalOptions;
use crate::loss::splits_from_forward;
use crate::{Instance, SplitModel};

/// The result of one forward pass: normalized splits plus the exact MLU
/// they achieve on the instance's path program.
#[derive(Clone, Debug)]
pub struct Inference {
    /// Per-tunnel split ratios (flat tunnel order, per-flow normalized).
    pub splits: Vec<f64>,
    /// Exact MLU of those splits (f64 path program).
    pub mlu: f64,
}

impl Inference {
    /// True when every split and the MLU are finite numbers. A `false`
    /// here means the model produced NaN/inf activations (diverged
    /// checkpoint, poisoned input) and the result must not be installed
    /// on a network; serving degrades to last-good splits instead.
    pub fn is_finite(&self) -> bool {
        self.mlu.is_finite() && self.splits.iter().all(|s| s.is_finite())
    }
}

/// Run `model` on `instance` and return the [`Inference`]: splits are read
/// off the tape, re-normalized per flow (guards tiny softmax drift), and
/// rescaled around fully-failed links when `opts` asks for it.
///
/// This does **not** validate finiteness — call [`Inference::is_finite`]
/// when the result feeds anything other than offline reporting.
pub fn run_inference(
    model: &dyn SplitModel,
    store: &ParamStore,
    instance: &Instance,
    opts: EvalOptions,
) -> Inference {
    run_inference_impl(model, store, instance, opts, None)
}

/// [`run_inference`] reusing a per-epoch cache from
/// [`SplitModel::precompute_epoch`]: models with a TM-independent stage
/// (HARP's GCN + set transformer) skip it entirely. The cache must have
/// been computed on this topology epoch with this parameter store —
/// passing a stale cache silently yields splits for the wrong network,
/// which is why the serving layer owns invalidation.
pub fn run_inference_cached(
    model: &dyn SplitModel,
    store: &ParamStore,
    instance: &Instance,
    opts: EvalOptions,
    cache: &crate::EpochCache,
) -> Inference {
    run_inference_impl(model, store, instance, opts, Some(cache))
}

fn run_inference_impl(
    model: &dyn SplitModel,
    store: &ParamStore,
    instance: &Instance,
    opts: EvalOptions,
    cache: Option<&crate::EpochCache>,
) -> Inference {
    // `Tape::new` pops a warm bump arena from the global pool (and `Drop`
    // parks it back), so steady-state serving allocates nothing per request
    // once the pool has seen one forward of this size.
    let mut tape = Tape::new();
    let out = match cache {
        Some(c) => model.forward_cached(&mut tape, store, instance, c),
        None => model.forward(&mut tape, store, instance),
    };
    let mut splits = splits_from_forward(&tape, out);
    // guard against tiny float drift in the softmax
    splits = instance.program.normalize_splits(&splits);
    if opts.rescale_failed {
        splits = instance
            .program
            .rescale_around_failures(&splits, opts.failed_threshold);
    }
    let mlu = instance.program.mlu(&splits);
    Inference { splits, mlu }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate_model, Harp, HarpConfig};
    use harp_paths::TunnelSet;
    use harp_topology::Topology;
    use harp_traffic::TrafficMatrix;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_setup() -> (Instance, Harp, ParamStore) {
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 2, 10.0).unwrap();
        topo.add_link(2, 3, 10.0).unwrap();
        topo.add_link(3, 0, 10.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 2], 2, 0.0);
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 2, 4.0);
        tm.set_demand(2, 0, 2.0);
        let inst = Instance::compile(&topo, &tunnels, &tm);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = HarpConfig {
            gnn_layers: 1,
            gnn_hidden: 4,
            d_model: 8,
            settrans_layers: 1,
            heads: 1,
            d_ff: 8,
            mlp_hidden: 8,
            rau_iters: 1,
        };
        let harp = Harp::new(&mut store, &mut rng, cfg);
        (inst, harp, store)
    }

    #[test]
    fn inference_matches_evaluate_model() {
        let (inst, harp, store) = tiny_setup();
        for opts in [EvalOptions::default(), EvalOptions::with_rescaling()] {
            let inf = run_inference(&harp, &store, &inst, opts);
            let (mlu, splits) = evaluate_model(&harp, &store, &inst, opts);
            assert_eq!(inf.mlu.to_bits(), mlu.to_bits());
            assert_eq!(inf.splits, splits);
            assert!(inf.is_finite());
        }
    }

    #[test]
    fn cached_inference_matches_uncached_bitwise() {
        let (inst, harp, store) = tiny_setup();
        let cache = harp
            .precompute_epoch(&store, &inst)
            .expect("HARP has a cacheable epoch stage");
        for opts in [EvalOptions::default(), EvalOptions::with_rescaling()] {
            let plain = run_inference(&harp, &store, &inst, opts);
            let cached = run_inference_cached(&harp, &store, &inst, opts, &cache);
            assert_eq!(plain.mlu.to_bits(), cached.mlu.to_bits());
            assert_eq!(plain.splits, cached.splits);
        }
    }

    #[test]
    fn cached_inference_tracks_new_traffic_matrices() {
        // One cache, two TMs: the cached path must yield exactly what the
        // full forward yields for each TM (the cache holds only the
        // TM-independent stage).
        let (inst, harp, store) = tiny_setup();
        let cache = harp.precompute_epoch(&store, &inst).unwrap();
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 2, 10.0).unwrap();
        topo.add_link(2, 3, 10.0).unwrap();
        topo.add_link(3, 0, 10.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 2], 2, 0.0);
        let mut tm2 = TrafficMatrix::zeros(4);
        tm2.set_demand(0, 2, 9.0);
        tm2.set_demand(2, 0, 0.5);
        let inst2 = Instance::compile(&topo, &tunnels, &tm2);
        let plain = run_inference(&harp, &store, &inst2, EvalOptions::default());
        let cached = run_inference_cached(&harp, &store, &inst2, EvalOptions::default(), &cache);
        assert_eq!(plain.splits, cached.splits);
        assert_eq!(plain.mlu.to_bits(), cached.mlu.to_bits());
    }

    #[test]
    fn inference_splits_are_normalized_per_flow() {
        let (inst, harp, store) = tiny_setup();
        let inf = run_inference(&harp, &store, &inst, EvalOptions::default());
        assert!(inst.program.splits_are_valid(&inf.splits, 1e-9));
    }

    #[test]
    fn finiteness_check_catches_nan() {
        let bad = Inference {
            splits: vec![0.5, f64::NAN, 0.5],
            mlu: 1.0,
        };
        assert!(!bad.is_finite());
        let bad_mlu = Inference {
            splits: vec![1.0],
            mlu: f64::INFINITY,
        };
        assert!(!bad_mlu.is_finite());
    }
}
