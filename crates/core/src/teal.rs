//! The TEAL-like baseline (Xu et al., SIGCOMM '23).
//!
//! Architecture per the paper's description (§2.1): alternating FlowGNN
//! layers — a bipartite message-passing between edges and tunnels — and a
//! per-flow policy that **concatenates the flow's tunnel embeddings in
//! input order** and emits split logits. The concatenation is what makes
//! TEAL sensitive to tunnel reordering (§2.3), which Fig 7 measures.
//!
//! Substitution (see DESIGN.md): the original trains the policy with
//! reinforcement learning; we train with the same differentiable MLU loss
//! as HARP/DOTE, which is strictly kinder to TEAL (the paper itself could
//! not get RL training to converge on capacity-varying data, a contrast
//! fig18 reproduces via loss curves).

use std::sync::Arc;

use harp_nn::{Activation, Linear, Mlp};
use harp_tensor::{ParamStore, Tape, Var};
use rand::Rng;

use crate::{Instance, SplitModel};

/// TEAL hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TealConfig {
    /// Embedding width of edges/tunnels.
    pub hidden: usize,
    /// Number of FlowGNN (edge↔tunnel) layers (paper searches 6, 8).
    pub layers: usize,
    /// Hidden width of the per-flow policy MLP.
    pub policy_hidden: usize,
    /// Tunnels per flow the policy is built for (flows with fewer tunnels
    /// get zero-padded slots).
    pub tunnels_per_flow: usize,
}

impl Default for TealConfig {
    fn default() -> Self {
        TealConfig {
            hidden: 12,
            layers: 4,
            policy_hidden: 48,
            tunnels_per_flow: 4,
        }
    }
}

/// The TEAL-like model.
#[derive(Clone, Debug)]
pub struct Teal {
    cfg: TealConfig,
    edge_init: Linear,
    tunnel_init: Linear,
    edge_updates: Vec<Linear>,
    tunnel_updates: Vec<Linear>,
    policy: Mlp,
}

impl Teal {
    /// Construct with fresh parameters. `cfg.tunnels_per_flow` must be the
    /// maximum tunnels any flow has in the instances this model will see.
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, cfg: TealConfig) -> Self {
        let h = cfg.hidden;
        let edge_init = Linear::new(store, rng, "teal.edge_init", 1, h, true);
        let tunnel_init = Linear::new(store, rng, "teal.tunnel_init", 1, h, true);
        let mut edge_updates = Vec::with_capacity(cfg.layers);
        let mut tunnel_updates = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            tunnel_updates.push(Linear::new(
                store,
                rng,
                &format!("teal.tunnel_up.{l}"),
                2 * h,
                h,
                true,
            ));
            // The policy head reads only tunnel embeddings, so an edge
            // update after the last tunnel update would be dead weight
            // (zero gradient forever) — the final layer skips it.
            if l + 1 < cfg.layers {
                edge_updates.push(Linear::new(
                    store,
                    rng,
                    &format!("teal.edge_up.{l}"),
                    2 * h,
                    h,
                    true,
                ));
            }
        }
        let policy = Mlp::new(
            store,
            rng,
            "teal.policy",
            &[
                cfg.tunnels_per_flow * h + 1,
                cfg.policy_hidden,
                cfg.tunnels_per_flow,
            ],
            Activation::LeakyRelu(0.01),
            Activation::Identity,
        );
        Teal {
            cfg,
            edge_init,
            tunnel_init,
            edge_updates,
            tunnel_updates,
            policy,
        }
    }
}

impl SplitModel for Teal {
    fn forward(&self, t: &mut Tape, s: &ParamStore, inst: &Instance) -> Var {
        let h = self.cfg.hidden;
        let k = self.cfg.tunnels_per_flow;
        let counts = inst.tunnels_per_flow();
        assert!(
            counts.iter().all(|&c| c <= k),
            "TEAL built for {} tunnels/flow, instance has a flow with {}",
            k,
            counts.iter().max().copied().unwrap_or(0)
        );

        // per-tunnel edge counts for mean aggregation
        let mut tunnel_len = vec![0.0f32; inst.num_tunnels];
        for &tt in inst.pair_tunnel.iter() {
            tunnel_len[tt] += 1.0;
        }
        let inv_len: Vec<f32> = tunnel_len.iter().map(|&l| 1.0 / l.max(1.0)).collect();

        let caps = t.constant(vec![inst.num_edges, 1], inst.edge_caps.clone());
        let mut edge_emb = self.edge_init.forward(t, s, caps);
        edge_emb = t.tanh(edge_emb);
        let demand_col = t.constant(vec![inst.num_tunnels, 1], inst.tunnel_demand.clone());
        let mut tun_emb = self.tunnel_init.forward(t, s, demand_col);
        tun_emb = t.tanh(tun_emb);

        for (l, tu) in self.tunnel_updates.iter().enumerate() {
            // tunnel <- mean of its edges' embeddings
            let gathered = t.gather_rows(edge_emb, inst.pair_edge.clone());
            let summed = t.segment_sum(gathered, inst.pair_tunnel.clone(), inst.num_tunnels);
            let inv = t.constant(vec![inst.num_tunnels, 1], inv_len.clone());
            let inv_b = t.concat_cols(&vec![inv; h]);
            let mean = t.mul(summed, inv_b);
            let tin = t.concat_cols(&[tun_emb, mean]);
            let tnew = tu.forward(t, s, tin);
            tun_emb = t.tanh(tnew);

            // edge <- sum of crossing tunnels' embeddings (skipped after
            // the last tunnel update: nothing downstream reads edges)
            if let Some(eu) = self.edge_updates.get(l) {
                let gathered_t = t.gather_rows(tun_emb, inst.pair_tunnel.clone());
                let summed_e = t.segment_sum(gathered_t, inst.pair_edge.clone(), inst.num_edges);
                let ein = t.concat_cols(&[edge_emb, summed_e]);
                let enew = eu.forward(t, s, ein);
                edge_emb = t.tanh(enew);
            }
        }

        // per-flow policy over concatenated (ordered!) tunnel embeddings
        // slot (f, j) -> global tunnel id, or the zero row for missing slots
        let zero_row = t.zeros(vec![1, h]);
        let table = t.concat_rows(&[tun_emb, zero_row]); // row T = zeros
        let mut slot_index = vec![inst.num_tunnels; inst.num_flows * k];
        let mut tunnel_slot = vec![0usize; inst.num_tunnels];
        let mut seen = vec![0usize; inst.num_flows];
        for (g, &f) in inst.tunnel_flow.iter().enumerate() {
            let j = seen[f];
            slot_index[f * k + j] = g;
            tunnel_slot[g] = f * k + j;
            seen[f] += 1;
        }
        let slots = t.gather_rows(table, Arc::new(slot_index));
        let per_flow = t.reshape(slots, vec![inst.num_flows, k * h]);
        let fdem = t.constant(vec![inst.num_flows, 1], inst.flow_demands.clone());
        let pin = t.concat_cols(&[per_flow, fdem]);
        let logits = self.policy.forward(t, s, pin); // [F, k]
        let logits_flat = t.reshape(logits, vec![inst.num_flows * k]);
        let tunnel_logits = t.gather_rows(logits_flat, Arc::new(tunnel_slot));
        t.segment_softmax(tunnel_logits, inst.tunnel_flow.clone(), inst.num_flows)
    }

    fn name(&self) -> &'static str {
        "TEAL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mlu_loss;
    use harp_paths::TunnelSet;
    use harp_topology::Topology;
    use harp_traffic::TrafficMatrix;
    use rand::{rngs::StdRng, SeedableRng};

    fn diamond_instance() -> Instance {
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 3, 10.0).unwrap();
        topo.add_link(0, 2, 20.0).unwrap();
        topo.add_link(2, 3, 20.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, 12.0);
        tm.set_demand(3, 0, 6.0);
        Instance::compile(&topo, &tunnels, &tm)
    }

    fn cfg() -> TealConfig {
        TealConfig {
            hidden: 8,
            layers: 2,
            policy_hidden: 16,
            tunnels_per_flow: 2,
        }
    }

    #[test]
    fn valid_splits_and_training() {
        let inst = diamond_instance();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let teal = Teal::new(&mut store, &mut rng, cfg());
        let loss_of = |store: &ParamStore| {
            let mut t = Tape::new();
            let sp = teal.forward(&mut t, store, &inst);
            let l = mlu_loss(&mut t, sp, &inst);
            (t, sp, l)
        };
        let (t0, s0, l0) = loss_of(&store);
        let sv: Vec<f64> = t0.value(s0).iter().map(|&x| x as f64).collect();
        assert!(inst.program.splits_are_valid(&sv, 1e-4));
        let before = t0.scalar_value(l0);
        let mut opt = harp_nn::Adam::new(&store, harp_nn::AdamConfig::with_lr(5e-3));
        for _ in 0..40 {
            let (t, _, l) = loss_of(&store);
            store.zero_grads();
            t.backward(l, &mut store);
            opt.step_and_zero(&mut store);
        }
        let (t1, _, l1) = loss_of(&store);
        assert!(t1.scalar_value(l1) < before);
    }

    #[test]
    fn sensitive_to_tunnel_order() {
        // Reordering tunnels within a flow permutes the concatenated policy
        // input; TEAL's output for the *same* tunnel changes (§2.3).
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 3, 10.0).unwrap();
        topo.add_link(0, 2, 20.0).unwrap();
        topo.add_link(2, 3, 20.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);
        // force a reversal of each flow's tunnel list (deterministic)
        let flows = tunnels.flows().to_vec();
        let reversed: Vec<Vec<harp_paths::Path>> = (0..tunnels.num_flows())
            .map(|f| {
                let mut v = tunnels.tunnels_of(f).to_vec();
                v.reverse();
                v
            })
            .collect();
        let shuffled = TunnelSet::from_parts(flows, reversed);

        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, 12.0);
        tm.set_demand(3, 0, 6.0);
        let inst = Instance::compile(&topo, &tunnels, &tm);
        let sinst = Instance::compile(&topo, &shuffled, &tm);

        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let teal = Teal::new(&mut store, &mut rng, cfg());
        let mut t1 = Tape::new();
        let s1 = teal.forward(&mut t1, &store, &inst);
        let mut t2 = Tape::new();
        let s2 = teal.forward(&mut t2, &store, &sinst);

        // same physical tunnel (flow 0's shortest path) sits at index 0 in
        // inst and index 1 in sinst; outputs differ for a generic model
        let a = t1.value(s1)[0];
        let b = t2.value(s2)[1];
        assert!(
            (a - b).abs() > 1e-6,
            "TEAL unexpectedly invariant to tunnel order: {a} vs {b}"
        );
    }

    #[test]
    fn capacity_changes_reach_the_output() {
        // unlike DOTE, TEAL sees capacities through edge embeddings
        let inst = diamond_instance();
        let mut topo2 = Topology::new(4);
        topo2.add_link(0, 1, 2.0).unwrap();
        topo2.add_link(1, 3, 2.0).unwrap();
        topo2.add_link(0, 2, 20.0).unwrap();
        topo2.add_link(2, 3, 20.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo2, &[0, 3], 2, 0.0);
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, 12.0);
        tm.set_demand(3, 0, 6.0);
        let inst2 = Instance::compile(&topo2, &tunnels, &tm);

        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let teal = Teal::new(&mut store, &mut rng, cfg());
        let mut t1 = Tape::new();
        let s1 = teal.forward(&mut t1, &store, &inst);
        let mut t2 = Tape::new();
        let s2 = teal.forward(&mut t2, &store, &inst2);
        let diff: f32 = t1
            .value(s1)
            .iter()
            .zip(t2.value(s2))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "capacity change did not affect TEAL output");
    }
}
