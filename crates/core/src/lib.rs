//! # harp-core
//!
//! The paper's models and the harness around them:
//!
//! * [`Instance`] — a (topology, tunnels, traffic matrix) snapshot compiled
//!   into the index tensors every model consumes, plus the `f64`
//!   [`harp_opt::PathProgram`] used for exact evaluation.
//! * [`Harp`] — the paper's model: GCN edge embeddings → set-transformer
//!   tunnel/edge-tunnel embeddings → MLP1 initial split logits → K
//!   recurrent-adjustment (RAU) refinements driven by bottleneck-link
//!   feedback → per-flow softmax splits. `rau_iters = 0` gives the
//!   HARP-NoRAU ablation.
//! * [`Dote`] — the DOTE baseline: an MLP from the (fixed-layout) demand
//!   vector straight to split logits; blind to topology and capacities.
//! * [`Teal`] — the TEAL-like baseline: bipartite edge↔tunnel FlowGNN plus
//!   a per-flow policy MLP over *concatenated* (order-sensitive) tunnel
//!   embeddings. Trained with the same differentiable MLU loss (documented
//!   substitution for RL — see DESIGN.md).
//! * `train` / `eval` — mini-batch trainer with validation-based model
//!   selection, NormMLU evaluation, CDFs and boxplot statistics.
//!
//! All models implement [`SplitModel`]; the differentiable MLU objective
//! ([`mlu_loss`]) is shared.

mod analysis;
mod dote;
mod eval;
mod harp;
mod infer;
mod instance;
mod loss;
mod teal;
mod train;

pub use analysis::{analyze_determinism, DeterminismReport};
pub use dote::Dote;
pub use eval::{
    boxplot_stats, cdf_points, evaluate_model, fraction_at_most, norm_mlu, percentile,
    BoxplotStats, EvalOptions,
};
pub use harp::{Harp, HarpConfig};
pub use infer::{run_inference, run_inference_cached, Inference};
pub use instance::Instance;
pub use loss::{
    mlu_loss, mlu_with_mean_util_loss, splits_from_forward, throughput_loss, utilization,
};
pub use teal::{Teal, TealConfig};
pub use train::{train_model, EpochStats, TrainConfig, TrainError, TrainReport, SNAPSHOT_FILE};

use harp_tensor::{ParamStore, Tape, Var};

/// Model state that depends only on the topology and tunnel set — not on
/// the traffic matrix — computed once per topology *epoch* and reused
/// across every TM served against it. The layout of `data` is defined by
/// the model that produced it (for HARP: the flat `[T * seq_len, d_model]`
/// edge-tunnel embedding table out of the set transformer).
///
/// A cache is only valid for the exact `(topology, tunnels, parameters)`
/// triple it was computed from; the serving layer invalidates it on every
/// topology update and checkpoint reload.
#[derive(Clone, Debug)]
pub struct EpochCache {
    /// Cached tensor data (model-defined meaning), shared across tapes.
    pub data: std::sync::Arc<Vec<f32>>,
    /// Shape of the cached tensor.
    pub shape: Vec<usize>,
}

/// A TE scheme that maps a compiled [`Instance`] to per-tunnel split
/// ratios (a rank-1 tensor of length `instance.num_tunnels`, already
/// normalized per flow by a segment softmax).
///
/// `Sync` is a supertrait so that training and evaluation can fan
/// per-snapshot forward/backward passes out across the `harp-runtime`
/// worker pool; models hold only parameter handles and configuration, so
/// this costs implementors nothing.
pub trait SplitModel: Sync {
    /// Record the forward pass on `tape` and return the splits node.
    fn forward(&self, tape: &mut Tape, store: &ParamStore, instance: &Instance) -> Var;

    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Compute the TM-independent part of the forward pass for this
    /// topology epoch, if the model has one worth caching. `instance` may
    /// be compiled against any TM (only its topology/tunnel tensors are
    /// read). The default — models whose cost is dominated by the
    /// TM-dependent part — returns `None`.
    fn precompute_epoch(&self, store: &ParamStore, instance: &Instance) -> Option<EpochCache> {
        let _ = (store, instance);
        None
    }

    /// Forward pass reusing a cache from [`Self::precompute_epoch`] on
    /// the same epoch and parameters. The default ignores the cache and
    /// runs the full forward, so callers may pass any model's cache back
    /// to it unconditionally.
    fn forward_cached(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        instance: &Instance,
        cache: &EpochCache,
    ) -> Var {
        let _ = cache;
        self.forward(tape, store, instance)
    }
}
