//! # harp-core
//!
//! The paper's models and the harness around them:
//!
//! * [`Instance`] — a (topology, tunnels, traffic matrix) snapshot compiled
//!   into the index tensors every model consumes, plus the `f64`
//!   [`harp_opt::PathProgram`] used for exact evaluation.
//! * [`Harp`] — the paper's model: GCN edge embeddings → set-transformer
//!   tunnel/edge-tunnel embeddings → MLP1 initial split logits → K
//!   recurrent-adjustment (RAU) refinements driven by bottleneck-link
//!   feedback → per-flow softmax splits. `rau_iters = 0` gives the
//!   HARP-NoRAU ablation.
//! * [`Dote`] — the DOTE baseline: an MLP from the (fixed-layout) demand
//!   vector straight to split logits; blind to topology and capacities.
//! * [`Teal`] — the TEAL-like baseline: bipartite edge↔tunnel FlowGNN plus
//!   a per-flow policy MLP over *concatenated* (order-sensitive) tunnel
//!   embeddings. Trained with the same differentiable MLU loss (documented
//!   substitution for RL — see DESIGN.md).
//! * `train` / `eval` — mini-batch trainer with validation-based model
//!   selection, NormMLU evaluation, CDFs and boxplot statistics.
//!
//! All models implement [`SplitModel`]; the differentiable MLU objective
//! ([`mlu_loss`]) is shared.

mod dote;
mod eval;
mod harp;
mod instance;
mod loss;
mod teal;
mod train;

pub use dote::Dote;
pub use eval::{
    boxplot_stats, cdf_points, evaluate_model, fraction_at_most, norm_mlu, percentile,
    BoxplotStats, EvalOptions,
};
pub use harp::{Harp, HarpConfig};
pub use instance::Instance;
pub use loss::{
    mlu_loss, mlu_with_mean_util_loss, splits_from_forward, throughput_loss, utilization,
};
pub use teal::{Teal, TealConfig};
pub use train::{train_model, EpochStats, TrainConfig, TrainReport};

use harp_tensor::{ParamStore, Tape, Var};

/// A TE scheme that maps a compiled [`Instance`] to per-tunnel split
/// ratios (a rank-1 tensor of length `instance.num_tunnels`, already
/// normalized per flow by a segment softmax).
///
/// `Sync` is a supertrait so that training and evaluation can fan
/// per-snapshot forward/backward passes out across the `harp-runtime`
/// worker pool; models hold only parameter handles and configuration, so
/// this costs implementors nothing.
pub trait SplitModel: Sync {
    /// Record the forward pass on `tape` and return the splits node.
    fn forward(&self, tape: &mut Tape, store: &ParamStore, instance: &Instance) -> Var;

    /// Scheme name for reports.
    fn name(&self) -> &'static str;
}
