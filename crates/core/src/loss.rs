//! The shared differentiable MLU objective and helpers to extract splits.

use harp_tensor::{Tape, Var};

use crate::Instance;

/// Given normalized per-tunnel splits `[T]` on the tape, compute the MLU:
/// per-tunnel traffic = split · demand, edge loads by scatter-add over the
/// (tunnel, edge) incidence, utilization = load / capacity, MLU = max.
/// Gradients flow to the splits through the (sub-differentiable) max.
pub fn mlu_loss(tape: &mut Tape, splits: Var, instance: &Instance) -> Var {
    let demand = tape.constant_slice(vec![instance.num_tunnels], &instance.tunnel_demand);
    let traffic = tape.mul(splits, demand);
    let pair_traffic = tape.gather_rows(traffic, instance.pair_tunnel.clone());
    let loads = tape.segment_sum(pair_traffic, instance.pair_edge.clone(), instance.num_edges);
    let inv_caps = tape.constant_slice(vec![instance.num_edges], &instance.edge_inv_caps);
    let utils = tape.mul(loads, inv_caps);
    tape.max_all(utils)
}

/// Utilization vector (`[E]`) for the given splits — used inside HARP's RAU
/// and by diagnostics.
pub fn utilization(tape: &mut Tape, splits: Var, instance: &Instance) -> Var {
    let demand = tape.constant_slice(vec![instance.num_tunnels], &instance.tunnel_demand);
    let traffic = tape.mul(splits, demand);
    let pair_traffic = tape.gather_rows(traffic, instance.pair_tunnel.clone());
    let loads = tape.segment_sum(pair_traffic, instance.pair_edge.clone(), instance.num_edges);
    let inv_caps = tape.constant_slice(vec![instance.num_edges], &instance.edge_inv_caps);
    tape.mul(loads, inv_caps)
}

/// Extension objective (paper §7 names multi-metric TE as future work):
/// `MLU + lambda * mean utilization`. The secondary term breaks ties among
/// MLU-optimal routings in favour of globally lighter ones — the classic
/// "load balancing beyond the bottleneck" refinement — while `lambda -> 0`
/// recovers the paper's objective.
pub fn mlu_with_mean_util_loss(
    tape: &mut Tape,
    splits: Var,
    instance: &Instance,
    lambda: f32,
) -> Var {
    assert!(lambda >= 0.0, "lambda must be nonnegative");
    let utils = utilization(tape, splits, instance);
    let mlu = tape.max_all(utils);
    if lambda == 0.0 {
        return mlu;
    }
    let mean = tape.mean_all(utils);
    let weighted = tape.mul_scalar(mean, lambda);
    tape.add(mlu, weighted)
}

/// Extension objective (paper §7 future work): **negative throughput with a
/// capacity hinge** for MaxFlow-style TE. `admission` is a per-tunnel
/// admitted-traffic tensor `[T]` (absolute scaled units, e.g. produced by a
/// sigmoid admission head times demand); the loss is
/// `-(Σ admitted) + penalty * Σ_e relu(load_e - cap_e)`, so gradient
/// descent grows throughput until links saturate. Compare against
/// `harp_opt::MluOracle::solve_max_throughput` for the exact optimum.
pub fn throughput_loss(tape: &mut Tape, admission: Var, instance: &Instance, penalty: f32) -> Var {
    assert!(penalty > 0.0, "penalty must be positive");
    let pair_traffic = tape.gather_rows(admission, instance.pair_tunnel.clone());
    let loads = tape.segment_sum(pair_traffic, instance.pair_edge.clone(), instance.num_edges);
    let caps = tape.constant(vec![instance.num_edges], instance.edge_caps.clone());
    let over = tape.sub(loads, caps);
    let over = tape.relu(over);
    let over_sum = tape.sum_all(over);
    let served = tape.sum_all(admission);
    let neg_served = tape.neg(served);
    let weighted = tape.mul_scalar(over_sum, penalty);
    tape.add(neg_served, weighted)
}

/// Read a forward pass's splits off the tape as `f64` (for exact
/// evaluation with the instance's path program).
pub fn splits_from_forward(tape: &Tape, splits: Var) -> Vec<f64> {
    tape.value(splits).iter().map(|&x| x as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_paths::TunnelSet;
    use harp_topology::Topology;
    use harp_traffic::TrafficMatrix;

    fn instance() -> Instance {
        let mut topo = Topology::new(3);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 2, 10.0).unwrap();
        topo.add_link(0, 2, 40.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 2], 2, 0.0);
        let mut tm = TrafficMatrix::zeros(3);
        tm.set_demand(0, 2, 8.0);
        Instance::compile(&topo, &tunnels, &tm)
    }

    #[test]
    fn mlu_matches_exact_program() {
        let inst = instance();
        let mut t = Tape::new();
        // flow 0->2: direct (cap 40) and via 1 (cap 10); flow 2->0 too.
        let k = inst.tunnels_per_flow();
        assert!(k.iter().all(|&c| c == 2));
        let mut s = Vec::new();
        for _ in 0..inst.num_flows {
            s.extend_from_slice(&[0.75f32, 0.25]);
        }
        let sv = t.constant(vec![inst.num_tunnels], s.clone());
        let loss = mlu_loss(&mut t, sv, &inst);
        let exact = inst
            .program
            .mlu(&s.iter().map(|&x| x as f64).collect::<Vec<_>>());
        assert!(
            (t.scalar_value(loss) as f64 - exact).abs() < 1e-5,
            "tape {} vs exact {}",
            t.scalar_value(loss),
            exact
        );
    }

    #[test]
    fn gradient_pushes_traffic_off_bottleneck() {
        // Train raw logits through the loss: after a few gradient steps the
        // split of the overloaded tunnel must drop.
        use harp_tensor::ParamStore;
        let inst = instance();
        let mut store = ParamStore::new();
        // logits initialized to favor the low-capacity tunnel heavily
        let mut init = Vec::new();
        for _ in 0..inst.num_flows {
            init.extend_from_slice(&[2.0f32, 0.0]);
        }
        let id = store.register("u", vec![inst.num_tunnels], init);
        let splits_of = |store: &ParamStore| {
            let mut t = Tape::new();
            let u = t.param(store, id);
            let s = t.segment_softmax(u, inst.tunnel_flow.clone(), inst.num_flows);
            let loss = mlu_loss(&mut t, s, &inst);
            (t, s, loss)
        };
        let (t0, s0, l0) = splits_of(&store);
        let before_split = t0.value(s0)[0];
        let before_loss = t0.scalar_value(l0);
        for _ in 0..50 {
            let (t, _, loss) = splits_of(&store);
            store.zero_grads();
            t.backward(loss, &mut store);
            let g: Vec<f32> = store.grad(id).to_vec();
            for (d, gi) in store.data_mut(id).iter_mut().zip(g) {
                *d -= 0.5 * gi;
            }
        }
        let (t1, s1, l1) = splits_of(&store);
        assert!(t1.scalar_value(l1) < before_loss, "loss must decrease");
        assert!(t1.value(s1)[0] < before_split, "mass moves off bottleneck");
    }

    #[test]
    fn mean_util_term_prefers_lighter_routings() {
        // two MLU-equal routings; the one using the shorter path has lower
        // combined loss
        let inst = instance();
        let eval = |s: Vec<f32>, lambda: f32| {
            let mut t = Tape::new();
            let sv = t.constant(vec![inst.num_tunnels], s);
            let l = mlu_with_mean_util_loss(&mut t, sv, &inst, lambda);
            t.scalar_value(l)
        };
        // flow tunnels: [0->2 direct(1 hop, cap 40), 0->2 via 1 (2 hops)]
        let direct_heavy = {
            let mut v = Vec::new();
            for _ in 0..inst.num_flows {
                v.extend_from_slice(&[1.0f32, 0.0]);
            }
            v
        };
        let via_heavy = {
            let mut v = Vec::new();
            for _ in 0..inst.num_flows {
                v.extend_from_slice(&[0.0f32, 1.0]);
            }
            v
        };
        // with lambda = 0 it is plain MLU
        let l0 = eval(direct_heavy.clone(), 0.0);
        let mut t = Tape::new();
        let sv = t.constant(vec![inst.num_tunnels], direct_heavy.clone());
        let plain = mlu_loss(&mut t, sv, &inst);
        assert!((l0 - t.scalar_value(plain)).abs() < 1e-6);
        // the 2-hop routing loads more edges: higher mean-util penalty
        let lam = 0.5;
        assert!(eval(direct_heavy, lam) < eval(via_heavy, lam));
    }

    #[test]
    fn throughput_loss_trains_to_lp_optimum() {
        use harp_opt::MluOracle;
        use harp_tensor::ParamStore;
        // oversubscribed instance: demand exceeds capacity; trained
        // admission should approach the LP max-throughput
        let inst = {
            let mut topo = Topology::new(3);
            topo.add_link(0, 1, 10.0).unwrap();
            topo.add_link(1, 2, 10.0).unwrap();
            topo.add_link(0, 2, 40.0).unwrap();
            let tunnels = TunnelSet::k_shortest(&topo, &[0, 2], 2, 0.0);
            let mut tm = TrafficMatrix::zeros(3);
            tm.set_demand(0, 2, 100.0);
            Instance::compile(&topo, &tunnels, &tm)
        };
        let (lp_tp, _) = MluOracle::default().solve_max_throughput(&inst.program);

        // trainable logits -> sigmoid gate per tunnel scaled by demand
        let mut store = ParamStore::new();
        let id = store.register("gate", vec![inst.num_tunnels], vec![0.0; inst.num_tunnels]);
        let demand = inst.tunnel_demand.clone();
        let run = |store: &ParamStore| {
            let mut t = Tape::new();
            let g = t.param(store, id);
            let s = t.sigmoid(g);
            let d = t.constant(vec![inst.num_tunnels], demand.clone());
            let adm = t.mul(s, d);
            let loss = throughput_loss(&mut t, adm, &inst, 2.0);
            let served = t.value(adm).iter().sum::<f32>() as f64 * inst.cap_unit;
            (t, loss, served)
        };
        for _ in 0..1500 {
            let (t, loss, _) = run(&store);
            store.zero_grads();
            t.backward(loss, &mut store);
            let g: Vec<f32> = store.grad(id).to_vec();
            for (d, gi) in store.data_mut(id).iter_mut().zip(g) {
                *d -= 0.5 * gi;
            }
        }
        let (_, _, served) = run(&store);
        // capacity across the two disjoint-ish tunnels limits throughput;
        // hinge-penalized training plateaus near (not exactly at) the
        // optimum; require the bulk of LP throughput without gross overload
        assert!(
            served >= 0.7 * lp_tp && served <= 1.1 * lp_tp,
            "served {served} vs LP {lp_tp}"
        );
    }

    #[test]
    fn utilization_matches_loads() {
        let inst = instance();
        let mut t = Tape::new();
        let mut s = Vec::new();
        for _ in 0..inst.num_flows {
            s.extend_from_slice(&[0.5f32, 0.5]);
        }
        let sv = t.constant(vec![inst.num_tunnels], s.clone());
        let u = utilization(&mut t, sv, &inst);
        let loads = inst
            .program
            .loads(&s.iter().map(|&x| x as f64).collect::<Vec<_>>());
        for e in 0..inst.num_edges {
            let expect = loads[e] / inst.program.capacities[e];
            assert!(
                (t.value(u)[e] as f64 - expect).abs() < 1e-5,
                "edge {e}: {} vs {}",
                t.value(u)[e],
                expect
            );
        }
    }
}
