//! One-call determinism analysis for a [`SplitModel`]: records the
//! model's tapes on a compiled [`Instance`] and runs every `harp-verify`
//! pass over them — the v1 graph analyzer plus the v2 determinism passes
//! (reduction order, gradient aliasing, epoch-cache consistency).
//!
//! `cargo xtask analyze` drives this over freshly built HARP/DOTE/TEAL
//! models and gates CI on the combined findings; `harp-serve` operators
//! can run the same check against a production checkpoint before
//! installing it.

use harp_tensor::{ParamStore, Tape};
use harp_verify::{
    analyze, analyze_grad_aliasing, audit_reduction_order, check_epoch_cache, GraphReport, Severity,
};

use crate::loss::mlu_loss;
use crate::{EpochCache, Instance, SplitModel};

/// A NaN with a recognizable payload, used as the sentinel cache handed to
/// models whose [`SplitModel::precompute_epoch`] returns `None`: no real
/// tape constant carries this bit pattern, so the epoch-cache pass can
/// prove the default `forward_cached` never touches the cache
/// (`cache-unused`) instead of mistaking an ordinary constant for a
/// splice.
const SENTINEL_CACHE_BITS: u32 = 0x7fba_5eed;

/// The combined result of every determinism pass over one model on one
/// instance. Each field is an independent [`GraphReport`]; the model is
/// certified by [`DeterminismReport::is_clean`] only when *all* of them
/// are free of `Error`-severity findings.
#[derive(Clone, Debug)]
pub struct DeterminismReport {
    /// Scheme name ([`SplitModel::name`]).
    pub scheme: &'static str,
    /// Nodes recorded by the full forward + loss.
    pub full_nodes: usize,
    /// Nodes recorded by the cached forward.
    pub cached_nodes: usize,
    /// Whether the model supplied a real epoch cache (vs the sentinel).
    pub has_epoch_cache: bool,
    /// v1 graph analyzer (shapes, reachability, numerical hazards).
    pub graph: GraphReport,
    /// Reduction-order audit over the full forward + loss tape.
    pub reduction: GraphReport,
    /// Gradient-alias analysis of the serial backward schedule.
    pub aliasing: GraphReport,
    /// Epoch-cache consistency lint (full vs cached forward).
    pub cache: GraphReport,
}

impl DeterminismReport {
    /// Named access to the per-pass reports, for uniform rendering.
    pub fn passes(&self) -> [(&'static str, &GraphReport); 4] {
        [
            ("graph", &self.graph),
            ("reduction-order", &self.reduction),
            ("grad-aliasing", &self.aliasing),
            ("epoch-cache", &self.cache),
        ]
    }

    /// True when no pass produced an `Error`-severity finding.
    pub fn is_clean(&self) -> bool {
        self.passes().iter().all(|(_, r)| r.is_clean())
    }

    /// Total `Error`-severity findings across all passes.
    pub fn error_count(&self) -> usize {
        self.passes()
            .iter()
            .map(|(_, r)| r.count(Severity::Error))
            .sum()
    }
}

impl std::fmt::Display for DeterminismReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} ({} full / {} cached nodes, epoch cache: {})",
            self.scheme,
            if self.is_clean() { "clean" } else { "FINDINGS" },
            self.full_nodes,
            self.cached_nodes,
            if self.has_epoch_cache { "real" } else { "none" },
        )?;
        for (name, report) in self.passes() {
            for d in &report.diagnostics {
                writeln!(f, "  [{name}] {d}")?;
            }
        }
        Ok(())
    }
}

/// Record `model`'s tapes on `instance` and run every determinism pass.
///
/// * Full forward + [`mlu_loss`] tape → v1 [`analyze`],
///   [`audit_reduction_order`], and [`analyze_grad_aliasing`] over the
///   serial (single-section) schedule.
/// * `precompute_epoch` + `forward_cached` tape → [`check_epoch_cache`]
///   against the full forward. Models without an epoch cache are handed a
///   sentinel the pass provably never finds on the tape, certifying the
///   default full-forward fallback.
pub fn analyze_determinism(
    model: &dyn SplitModel,
    store: &ParamStore,
    instance: &Instance,
) -> DeterminismReport {
    let _span = harp_obs::span("core.analyze_determinism");

    let mut full = Tape::new();
    let full_out = model.forward(&mut full, store, instance);
    let loss = mlu_loss(&mut full, full_out, instance);

    let graph = analyze(&full, loss, Some(store));
    let reduction = audit_reduction_order(&full);
    let serial_schedule = 0..full.len();
    let aliasing = analyze_grad_aliasing(
        &full,
        loss,
        Some(store),
        std::slice::from_ref(&serial_schedule),
    );

    let epoch = model.precompute_epoch(store, instance);
    let has_epoch_cache = epoch.is_some();
    let cache = epoch.unwrap_or_else(|| EpochCache {
        data: std::sync::Arc::new(vec![f32::from_bits(SENTINEL_CACHE_BITS)]),
        shape: vec![1],
    });
    let mut cached = Tape::new();
    let cached_out = model.forward_cached(&mut cached, store, instance, &cache);
    let cache_report = check_epoch_cache(&full, full_out, &cached, cached_out, &cache.data);

    DeterminismReport {
        scheme: model.name(),
        full_nodes: full.len(),
        cached_nodes: cached.len(),
        has_epoch_cache,
        graph,
        reduction,
        aliasing,
        cache: cache_report,
    }
}
