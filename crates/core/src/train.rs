//! Mini-batch training with validation-based model selection.
//!
//! The paper's protocol (§4): train until convergence, checkpoint every
//! epoch, pick the checkpoint with the best validation score. Losses are
//! per-snapshot MLU, optionally normalized by the snapshot's optimal MLU
//! (a per-instance constant supplied by the caller, which conditions the
//! objective across heterogeneous snapshots).

use harp_nn::{clip_grad_norm, Adam, AdamConfig};
use harp_obs::span;
use harp_runtime::Runtime;
use harp_tensor::{ParamStore, Tape};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

use crate::eval::{evaluate_model, norm_mlu, EvalOptions};
use crate::loss::mlu_loss;
use crate::{Instance, SplitModel};

/// Training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Snapshots per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip_norm: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Stop after this many epochs without validation improvement
    /// (0 disables early stopping).
    pub patience: usize,
    /// Worker threads for per-snapshot forward/backward and validation
    /// fan-out. `0` resolves [`Runtime::global`] (the `HARP_THREADS`
    /// environment knob / available parallelism). Results are
    /// bitwise-reproducible for a fixed worker count and match across
    /// worker counts to floating-point-reduction tolerance (see DESIGN.md
    /// §"Runtime layer").
    pub workers: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 8,
            lr: 2e-3,
            clip_norm: 5.0,
            seed: 17,
            patience: 8,
            workers: 0,
        }
    }
}

impl TrainConfig {
    /// The worker pool this config resolves to.
    pub fn runtime(&self) -> Runtime {
        if self.workers == 0 {
            Runtime::global()
        } else {
            Runtime::new(self.workers)
        }
    }
}

/// Per-epoch record.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean (normalized) training loss.
    pub train_loss: f64,
    /// Mean validation NormMLU.
    pub val_norm_mlu: f64,
}

/// The outcome of a training run. The store is left holding the
/// best-validation parameters.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub history: Vec<EpochStats>,
    /// Index of the selected epoch.
    pub best_epoch: usize,
    /// Its validation NormMLU.
    pub best_val: f64,
}

/// Train `model` (whose parameters live in `store`).
///
/// `train` and `val` pair each instance with its **optimal MLU** (from
/// `harp-opt`); training losses are normalized by it and validation uses
/// NormMLU. `val_opts` controls rescaling at validation (match how the
/// scheme will be evaluated).
///
/// Per-snapshot forward/backward passes within a mini-batch (and the
/// validation sweep) run data-parallel across [`TrainConfig::workers`]
/// threads. Per-worker gradients accumulate in detached buffers and merge
/// in a fixed-order tree, so a run is bitwise-reproducible for a given
/// worker count; different worker counts differ only by floating-point
/// reduction order (verified to tolerance in tests).
pub fn train_model(
    model: &dyn SplitModel,
    store: &mut ParamStore,
    train: &[(&Instance, f64)],
    val: &[(&Instance, f64)],
    cfg: TrainConfig,
    val_opts: EvalOptions,
) -> TrainReport {
    assert!(!train.is_empty(), "empty training set");
    if cfg!(debug_assertions) {
        preflight(model, store, train[0].0);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(store, AdamConfig::with_lr(cfg.lr));

    let mut history = Vec::with_capacity(cfg.epochs);
    let mut best_val = f64::INFINITY;
    let mut best_epoch = 0usize;
    let mut best_params = store.snapshot();
    let mut since_best = 0usize;

    let rt = cfg.runtime();
    harp_obs::event("train.start")
        .field("model", model.name())
        .field("epochs", cfg.epochs)
        .field("batch_size", cfg.batch_size)
        .field("lr", cfg.lr)
        .field("workers", rt.workers())
        .field("train_snapshots", train.len())
        .field("val_snapshots", val.len())
        .field("params", store.num_scalars())
        .emit();
    let mut order: Vec<usize> = (0..train.len()).collect();
    for epoch in 0..cfg.epochs {
        let epoch_t0 = std::time::Instant::now();
        let mut last_grad_norm = 0.0f32;
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let _step = span("train.step");
            store.zero_grads();
            let chunk_len = chunk.len();
            // Fan the batch out: each worker takes a contiguous block of
            // the chunk, accumulates into its own detached gradient buffer
            // (the store is shared read-only for forward passes), and the
            // per-worker buffers merge in a fixed-order tree so the step is
            // bitwise-reproducible for a given worker count.
            let partials = rt.par_chunks(chunk, |_, _, ids| {
                let mut grads = store.grad_buffer();
                let mut loss_sum = 0.0f64;
                for &i in ids {
                    let (inst, opt_mlu) = &train[i];
                    let mut tape = Tape::new();
                    let splits = {
                        let _fwd = span("forward");
                        model.forward(&mut tape, store, inst)
                    };
                    let mlu = mlu_loss(&mut tape, splits, inst);
                    // normalize: loss = MLU / optimal, averaged over the batch
                    let norm = if *opt_mlu > 0.0 {
                        (1.0 / opt_mlu) as f32
                    } else {
                        1.0
                    };
                    let loss = tape.mul_scalar(mlu, norm / chunk_len as f32);
                    loss_sum += tape.scalar_value(loss) as f64;
                    let _bwd = span("backward");
                    tape.backward_into(loss, &mut grads);
                }
                (grads, loss_sum)
            });
            let mut loss_sums = Vec::with_capacity(partials.len());
            let grads: Vec<_> = partials
                .into_iter()
                .map(|(g, l)| {
                    loss_sums.push(l);
                    g
                })
                .collect();
            epoch_loss += loss_sums.iter().sum::<f64>() * chunk_len as f64 / train.len() as f64;
            {
                let _merge = span("merge");
                if let Some(total) = Runtime::tree_reduce(grads, |mut a, b| {
                    a.accumulate(&b);
                    a
                }) {
                    store.merge_grads(&total);
                }
            }
            if harp_obs::enabled() {
                last_grad_norm = store.grad_norm();
            }
            if cfg.clip_norm > 0.0 {
                clip_grad_norm(store, cfg.clip_norm);
            }
            opt.step_and_zero(store);
        }

        // validation (pure per-snapshot map, summed in snapshot order)
        let val_score = if val.is_empty() {
            epoch_loss
        } else {
            let _val = span("validate");
            let scores = rt.par_map(val, |_, (inst, opt_mlu)| {
                let (mlu, _) = evaluate_model(model, store, inst, val_opts);
                norm_mlu(mlu, *opt_mlu)
            });
            scores.iter().sum::<f64>() / val.len() as f64
        };
        harp_obs::event("train.epoch")
            .field("epoch", epoch)
            .field("loss", epoch_loss)
            .field("val_norm_mlu", val_score)
            .field("grad_norm", last_grad_norm)
            .field("wall_s", epoch_t0.elapsed().as_secs_f64())
            .field("workers", rt.workers())
            .emit();
        history.push(EpochStats {
            epoch,
            train_loss: epoch_loss,
            val_norm_mlu: val_score,
        });

        if val_score < best_val {
            best_val = val_score;
            best_epoch = epoch;
            best_params = store.snapshot();
            since_best = 0;
        } else {
            since_best += 1;
            if cfg.patience > 0 && since_best >= cfg.patience {
                break;
            }
        }
    }

    store.restore(&best_params);
    harp_obs::event("train.done")
        .field("model", model.name())
        .field("epochs_run", history.len())
        .field("best_epoch", best_epoch)
        .field("best_val_norm_mlu", best_val)
        .emit();
    TrainReport {
        history,
        best_epoch,
        best_val,
    }
}

/// Debug-build pre-flight: record one training graph and run the
/// `harp-verify` static analyzer over it before committing to a full run.
///
/// Graph-structure bugs (a parameter the loss can't reach, an internally
/// inconsistent shape, a NaN constant) otherwise surface as a silently flat
/// loss curve hours later. Errors panic with the full report; warnings and
/// notes route through the observability sink (`preflight.diagnostic`
/// events, with a stderr fallback when no sink is configured) so JSONL
/// consumers see pre-flight findings alongside training metrics. Compiled
/// out of release builds, where `train_model` pays nothing.
fn preflight(model: &dyn SplitModel, store: &ParamStore, inst: &Instance) {
    let mut tape = Tape::new();
    let splits = model.forward(&mut tape, store, inst);
    let loss = mlu_loss(&mut tape, splits, inst);
    let report = harp_verify::analyze(&tape, loss, Some(store));
    assert!(
        report.is_clean(),
        "training-graph pre-flight failed:\n{}",
        report.summary()
    );
    for d in &report.diagnostics {
        harp_obs::warn_always(
            "preflight.diagnostic",
            &[
                ("severity", d.severity.to_string().into()),
                ("code", d.code.into()),
                ("detail", d.to_string().into()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Harp, HarpConfig};
    use harp_opt::MluOracle;
    use harp_paths::TunnelSet;
    use harp_topology::Topology;
    use harp_traffic::TrafficMatrix;
    use rand::Rng;

    fn diamond() -> (Topology, TunnelSet) {
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 3, 10.0).unwrap();
        topo.add_link(0, 2, 20.0).unwrap();
        topo.add_link(2, 3, 20.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);
        (topo, tunnels)
    }

    #[test]
    fn training_improves_validation_norm_mlu() {
        let (topo, tunnels) = diamond();
        let mut rng = StdRng::seed_from_u64(5);
        let oracle = MluOracle::default();
        let make = |rng: &mut StdRng| {
            let mut tm = TrafficMatrix::zeros(4);
            tm.set_demand(0, 3, rng.gen_range(5.0..15.0));
            tm.set_demand(3, 0, rng.gen_range(2.0..8.0));
            let inst = Instance::compile(&topo, &tunnels, &tm);
            let opt = oracle.solve(&inst.program).mlu;
            (inst, opt)
        };
        let train_set: Vec<(Instance, f64)> = (0..8).map(|_| make(&mut rng)).collect();
        let val_set: Vec<(Instance, f64)> = (0..3).map(|_| make(&mut rng)).collect();
        let train_refs: Vec<(&Instance, f64)> = train_set.iter().map(|(i, o)| (i, *o)).collect();
        let val_refs: Vec<(&Instance, f64)> = val_set.iter().map(|(i, o)| (i, *o)).collect();

        let mut store = ParamStore::new();
        let mut mrng = StdRng::seed_from_u64(1);
        let cfg = HarpConfig {
            gnn_layers: 2,
            gnn_hidden: 4,
            d_model: 8,
            settrans_layers: 1,
            heads: 1,
            d_ff: 16,
            mlp_hidden: 16,
            rau_iters: 3,
        };
        let harp = Harp::new(&mut store, &mut mrng, cfg);

        // pre-training validation score
        let mut pre = 0.0;
        for (inst, o) in &val_refs {
            let (mlu, _) = evaluate_model(&harp, &store, inst, EvalOptions::default());
            pre += norm_mlu(mlu, *o);
        }
        pre /= val_refs.len() as f64;

        let report = train_model(
            &harp,
            &mut store,
            &train_refs,
            &val_refs,
            TrainConfig {
                epochs: 15,
                batch_size: 4,
                lr: 5e-3,
                ..Default::default()
            },
            EvalOptions::default(),
        );
        assert!(!report.history.is_empty());
        assert!(
            report.best_val <= pre + 1e-9,
            "best {} vs pre {}",
            report.best_val,
            pre
        );
        // the store holds the best checkpoint: re-evaluating reproduces it
        let mut post = 0.0;
        for (inst, o) in &val_refs {
            let (mlu, _) = evaluate_model(&harp, &store, inst, EvalOptions::default());
            post += norm_mlu(mlu, *o);
        }
        post /= val_refs.len() as f64;
        assert!((post - report.best_val).abs() < 1e-9);
    }

    /// Train HARP on a small zoo-style diamond topology with the given
    /// worker count and return the full report (fresh store/model/data each
    /// call so runs are independent).
    fn train_with_workers(workers: usize) -> TrainReport {
        let (topo, tunnels) = diamond();
        let mut rng = StdRng::seed_from_u64(5);
        let oracle = MluOracle::default();
        let make = |rng: &mut StdRng| {
            let mut tm = TrafficMatrix::zeros(4);
            tm.set_demand(0, 3, rng.gen_range(5.0..15.0));
            tm.set_demand(3, 0, rng.gen_range(2.0..8.0));
            let inst = Instance::compile(&topo, &tunnels, &tm);
            let opt = oracle.solve(&inst.program).mlu;
            (inst, opt)
        };
        let train_set: Vec<(Instance, f64)> = (0..9).map(|_| make(&mut rng)).collect();
        let val_set: Vec<(Instance, f64)> = (0..3).map(|_| make(&mut rng)).collect();
        let train_refs: Vec<(&Instance, f64)> = train_set.iter().map(|(i, o)| (i, *o)).collect();
        let val_refs: Vec<(&Instance, f64)> = val_set.iter().map(|(i, o)| (i, *o)).collect();

        let mut store = ParamStore::new();
        let mut mrng = StdRng::seed_from_u64(1);
        let cfg = HarpConfig {
            gnn_layers: 2,
            gnn_hidden: 4,
            d_model: 8,
            settrans_layers: 1,
            heads: 1,
            d_ff: 16,
            mlp_hidden: 16,
            rau_iters: 2,
        };
        let harp = Harp::new(&mut store, &mut mrng, cfg);
        train_model(
            &harp,
            &mut store,
            &train_refs,
            &val_refs,
            TrainConfig {
                epochs: 6,
                batch_size: 4,
                lr: 5e-3,
                workers,
                ..Default::default()
            },
            EvalOptions::default(),
        )
    }

    /// The paper-protocol determinism contract: fanning a batch across 2 or
    /// 4 workers must reproduce the serial run's model selection exactly
    /// and its scores to floating-point-reduction tolerance (1e-5 NormMLU).
    #[test]
    fn parallel_training_matches_serial_within_tolerance() {
        let serial = train_with_workers(1);
        for workers in [2, 4] {
            let par = train_with_workers(workers);
            assert_eq!(
                par.best_epoch, serial.best_epoch,
                "{workers} workers picked a different best epoch"
            );
            assert_eq!(par.history.len(), serial.history.len());
            assert!(
                (par.best_val - serial.best_val).abs() < 1e-5,
                "{workers} workers: best val {} vs serial {}",
                par.best_val,
                serial.best_val
            );
            for (p, s) in par.history.iter().zip(&serial.history) {
                assert!(
                    (p.val_norm_mlu - s.val_norm_mlu).abs() < 1e-5,
                    "{workers} workers: epoch {} val {} vs serial {}",
                    p.epoch,
                    p.val_norm_mlu,
                    s.val_norm_mlu
                );
                assert!(
                    (p.train_loss - s.train_loss).abs() < 1e-4,
                    "{workers} workers: epoch {} train loss {} vs serial {}",
                    p.epoch,
                    p.train_loss,
                    s.train_loss
                );
            }
        }
    }

    /// Re-running with the same worker count is bitwise-reproducible.
    #[test]
    fn parallel_training_is_reproducible_per_worker_count() {
        let a = train_with_workers(2);
        let b = train_with_workers(2);
        assert_eq!(a.best_epoch, b.best_epoch);
        assert_eq!(a.best_val.to_bits(), b.best_val.to_bits());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.train_loss.to_bits(), y.train_loss.to_bits());
            assert_eq!(x.val_norm_mlu.to_bits(), y.val_norm_mlu.to_bits());
        }
    }

    #[test]
    fn early_stopping_respects_patience() {
        let (topo, tunnels) = diamond();
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, 10.0);
        let inst = Instance::compile(&topo, &tunnels, &tm);
        let oracle = MluOracle::default();
        let opt = oracle.solve(&inst.program).mlu;
        let train_refs = vec![(&inst, opt)];
        let val_refs = vec![(&inst, opt)];
        let mut store = ParamStore::new();
        let mut mrng = StdRng::seed_from_u64(2);
        let cfg = HarpConfig {
            gnn_layers: 1,
            gnn_hidden: 4,
            d_model: 8,
            settrans_layers: 1,
            heads: 1,
            d_ff: 8,
            mlp_hidden: 8,
            rau_iters: 1,
        };
        let harp = Harp::new(&mut store, &mut mrng, cfg);
        let report = train_model(
            &harp,
            &mut store,
            &train_refs,
            &val_refs,
            TrainConfig {
                epochs: 200,
                batch_size: 1,
                lr: 1e-3,
                patience: 3,
                ..Default::default()
            },
            EvalOptions::default(),
        );
        assert!(report.history.len() <= 200);
        assert!(report.history.len() > report.best_epoch);
    }
}
