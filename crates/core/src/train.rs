//! Mini-batch training with validation-based model selection, resumable
//! checkpoints, and divergence rollback.
//!
//! The paper's protocol (§4): train until convergence, checkpoint every
//! epoch, pick the checkpoint with the best validation score. Losses are
//! per-snapshot MLU, optionally normalized by the snapshot's optimal MLU
//! (a per-instance constant supplied by the caller, which conditions the
//! objective across heterogeneous snapshots).
//!
//! ## Fault tolerance (DESIGN.md §10)
//!
//! * **Resumable**: with [`TrainConfig::checkpoint_dir`] set, a full
//!   training snapshot (parameters, Adam moments, RNG state, early-stop
//!   bookkeeping) is saved atomically every
//!   [`TrainConfig::checkpoint_every`] epochs; a later call pointed at the
//!   same directory resumes and finishes **bitwise-identically** to an
//!   uninterrupted run.
//! * **Divergence sentinel**: a non-finite batch loss or gradient norm —
//!   or a panic in a pool worker, contained by
//!   [`harp_runtime::Runtime::try_par_chunks`] — rolls the epoch back to
//!   its start, halves the learning rate, and retries, up to
//!   [`TrainConfig::max_rollbacks`] times before failing with
//!   [`TrainError::Diverged`].
//! * **Chaos-testable**: a [`harp_chaos::FaultPlan`] (explicit via
//!   [`TrainConfig::chaos`], or process-wide via `HARP_FAULT`) injects
//!   NaN gradients, worker kills, checkpoint corruption, and simulated
//!   aborts at deterministic points, exercising all of the above in tests.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use harp_chaos::FaultPlan;
use harp_nn::{
    clip_grad_norm, load_snapshot, save_snapshot, Adam, AdamConfig, SnapshotEpoch, TrainSnapshot,
};
use harp_obs::span;
use harp_runtime::Runtime;
use harp_tensor::{GradBuffer, ParamStore, Tape};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

use crate::eval::{evaluate_model, norm_mlu, EvalOptions};
use crate::loss::mlu_loss;
use crate::{Instance, SplitModel};

/// File name of the training snapshot inside
/// [`TrainConfig::checkpoint_dir`].
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// Training hyperparameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Snapshots per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip_norm: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Stop after this many epochs without validation improvement
    /// (0 disables early stopping).
    pub patience: usize,
    /// Worker threads for per-snapshot forward/backward and validation
    /// fan-out. `0` resolves [`Runtime::global`] (the `HARP_THREADS`
    /// environment knob / available parallelism). Results are
    /// bitwise-reproducible for a fixed worker count and match across
    /// worker counts to floating-point-reduction tolerance (see DESIGN.md
    /// §"Runtime layer").
    pub workers: usize,
    /// Save a resumable training snapshot every this many completed epochs
    /// (`0` disables checkpointing even when `checkpoint_dir` is set).
    pub checkpoint_every: usize,
    /// Directory holding the training snapshot ([`SNAPSHOT_FILE`]).
    /// `None` disables checkpointing. When the directory already contains
    /// a snapshot, training **resumes** from it — and then finishes
    /// bitwise-identically to a run that was never interrupted.
    pub checkpoint_dir: Option<PathBuf>,
    /// Divergence rollbacks allowed across the whole run before training
    /// fails with [`TrainError::Diverged`]. Each rollback restores the
    /// epoch-start state and halves the learning rate.
    pub max_rollbacks: usize,
    /// Warm-start fine-tune: seed the parameters from this PR-5 training
    /// snapshot's **selected** (best-validation) checkpoint, but start
    /// everything else — optimizer moments, RNG, epoch counter, early-stop
    /// and divergence bookkeeping, history — fresh. This is transfer to a
    /// drifted topology, not a resume: a resumable snapshot in
    /// [`TrainConfig::checkpoint_dir`] takes precedence when present, so an
    /// interrupted fine-tune still resumes bitwise. Set via
    /// [`TrainConfig::warm_start_from`].
    pub warm_start: Option<PathBuf>,
    /// Fault-injection plan for chaos tests. `None` falls back to the
    /// process-wide plan parsed from `HARP_FAULT` (usually also `None`).
    pub chaos: Option<Arc<FaultPlan>>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 8,
            lr: 2e-3,
            clip_norm: 5.0,
            seed: 17,
            patience: 8,
            workers: 0,
            checkpoint_every: 1,
            checkpoint_dir: None,
            max_rollbacks: 3,
            warm_start: None,
            chaos: None,
        }
    }
}

impl TrainConfig {
    /// The worker pool this config resolves to.
    pub fn runtime(&self) -> Runtime {
        if self.workers == 0 {
            Runtime::global()
        } else {
            Runtime::new(self.workers)
        }
    }

    /// Fine-tune from `snapshot` (a [`SNAPSHOT_FILE`] written by an earlier
    /// run): load its best-validation parameters, reset all training state.
    /// Training then behaves exactly like a fresh run whose initial
    /// parameters happen to be the donor's selected checkpoint — bitwise,
    /// for every worker count.
    pub fn warm_start_from(mut self, snapshot: impl Into<PathBuf>) -> Self {
        self.warm_start = Some(snapshot.into());
        self
    }
}

/// Per-epoch record.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean (normalized) training loss.
    pub train_loss: f64,
    /// Mean validation NormMLU.
    pub val_norm_mlu: f64,
}

/// The outcome of a training run. The store is left holding the
/// best-validation parameters.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub history: Vec<EpochStats>,
    /// Index of the selected epoch.
    pub best_epoch: usize,
    /// Its validation NormMLU.
    pub best_val: f64,
    /// Divergence rollbacks consumed (0 on a healthy run).
    pub rollbacks: usize,
    /// Epoch this run resumed from, when it picked up a checkpoint.
    pub resumed_from: Option<usize>,
}

/// Why a training run failed. The process always survives: every variant
/// is a structured, recoverable report, never an abort.
#[derive(Debug)]
pub enum TrainError {
    /// The divergence sentinel fired more than
    /// [`TrainConfig::max_rollbacks`] times. `detail` is the last trigger
    /// (non-finite loss/gradient, or a contained worker panic).
    Diverged {
        /// Epoch whose retry budget ran out.
        epoch: usize,
        /// Rollbacks consumed before giving up.
        rollbacks: usize,
        /// The last divergence trigger, human-readable.
        detail: String,
    },
    /// Saving or loading a training snapshot failed (I/O error, or a
    /// snapshot that does not match this model — the inner error names the
    /// offending field).
    Checkpoint(io::Error),
    /// A chaos `abort` fault interrupted the run after completing `epoch`
    /// (simulating a crash between epochs; a checkpointed run resumes).
    Aborted {
        /// Last completed epoch.
        epoch: usize,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Diverged {
                epoch,
                rollbacks,
                detail,
            } => write!(
                f,
                "training diverged at epoch {epoch} after {rollbacks} rollback(s): {detail}"
            ),
            TrainError::Checkpoint(e) => write!(f, "training checkpoint failed: {e}"),
            TrainError::Aborted { epoch } => {
                write!(f, "training aborted by fault injection after epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

/// Train `model` (whose parameters live in `store`).
///
/// `train` and `val` pair each instance with its **optimal MLU** (from
/// `harp-opt`); training losses are normalized by it and validation uses
/// NormMLU. `val_opts` controls rescaling at validation (match how the
/// scheme will be evaluated).
///
/// Per-snapshot forward/backward passes within a mini-batch (and the
/// validation sweep) run data-parallel across [`TrainConfig::workers`]
/// threads. Per-worker gradients accumulate in detached buffers and merge
/// in a fixed-order tree, so a run is bitwise-reproducible for a given
/// worker count; different worker counts differ only by floating-point
/// reduction order (verified to tolerance in tests).
///
/// See the module docs for the fault-tolerance contract: resumable
/// checkpoints ([`TrainConfig::checkpoint_dir`]), divergence rollback
/// ([`TrainConfig::max_rollbacks`]), and contained worker panics. On
/// failure the returned [`TrainError`] says which contract broke; the
/// store then holds the last epoch-start parameters (for
/// [`TrainError::Diverged`]) or the last checkpointed state, both of which
/// are finite and usable.
pub fn train_model(
    model: &dyn SplitModel,
    store: &mut ParamStore,
    train: &[(&Instance, f64)],
    val: &[(&Instance, f64)],
    cfg: TrainConfig,
    val_opts: EvalOptions,
) -> Result<TrainReport, TrainError> {
    assert!(!train.is_empty(), "empty training set");
    if cfg!(debug_assertions) {
        preflight(model, store, train[0].0);
    }
    let chaos = cfg.chaos.clone().or_else(harp_chaos::global_plan);
    let snapshot_path = cfg.checkpoint_dir.as_ref().map(|d| d.join(SNAPSHOT_FILE));
    if let Some(dir) = &cfg.checkpoint_dir {
        std::fs::create_dir_all(dir).map_err(TrainError::Checkpoint)?;
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(store, AdamConfig::with_lr(cfg.lr));
    let mut history: Vec<EpochStats> = Vec::with_capacity(cfg.epochs);
    let mut best_val = f64::INFINITY;
    let mut best_epoch = 0usize;
    let mut best_params = store.snapshot();
    let mut since_best = 0usize;
    let mut rollbacks = 0usize;
    let mut start_epoch = 0usize;
    let mut resumed_from = None;

    // Resume: a snapshot in the checkpoint directory wins over a fresh
    // start. Everything below is restored bitwise, so the resumed run is
    // indistinguishable from one that was never interrupted.
    if let Some(path) = &snapshot_path {
        if path.exists() {
            let snap = load_snapshot(store, path).map_err(TrainError::Checkpoint)?;
            opt.import_state(&snap.adam).map_err(|e| {
                TrainError::Checkpoint(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("training snapshot optimizer state does not fit this model: {e}"),
                ))
            })?;
            rng = StdRng::from_state(snap.rng_state);
            history = snap
                .history
                .iter()
                .map(|e| EpochStats {
                    epoch: e.epoch,
                    train_loss: e.train_loss,
                    val_norm_mlu: e.val_norm_mlu,
                })
                .collect();
            best_val = snap.best_val;
            best_epoch = snap.best_epoch;
            best_params = snap.best_params.clone();
            since_best = snap.since_best;
            rollbacks = snap.rollbacks;
            start_epoch = snap.next_epoch;
            resumed_from = Some(snap.next_epoch);
            harp_obs::event("train.resume")
                .field("path", path.display().to_string())
                .field("next_epoch", snap.next_epoch)
                .field("best_epoch", snap.best_epoch)
                .emit();
        }
    }

    // Warm start (no resumable snapshot found): take only the donor's
    // selected parameters; optimizer, RNG, and all bookkeeping stay at
    // their fresh-run values, so the fine-tune is bitwise-identical to a
    // fresh run initialized with those parameters.
    if resumed_from.is_none() {
        if let Some(path) = &cfg.warm_start {
            let snap = load_snapshot(store, path).map_err(TrainError::Checkpoint)?;
            store.restore(&snap.best_params);
            store.zero_grads();
            best_params = store.snapshot();
            harp_obs::event("train.warm_start")
                .field("path", path.display().to_string())
                .field("donor_best_epoch", snap.best_epoch)
                .field("donor_best_val", snap.best_val)
                .emit();
        }
    }

    let rt = cfg.runtime();
    harp_obs::event("train.start")
        .field("model", model.name())
        .field("epochs", cfg.epochs)
        .field("batch_size", cfg.batch_size)
        .field("lr", cfg.lr)
        .field("workers", rt.workers())
        .field("train_snapshots", train.len())
        .field("val_snapshots", val.len())
        .field("params", store.num_scalars())
        .field("resumed", resumed_from.is_some())
        .emit();

    let mut epoch = start_epoch;
    let mut stop = false;
    while epoch < cfg.epochs && !stop {
        // Rollback anchor: everything a divergence retry must restore.
        let anchor_params = store.snapshot();
        let anchor_opt = opt.clone();
        let anchor_rng = rng.clone();

        let epoch_t0 = std::time::Instant::now();
        let mut last_grad_norm = 0.0f32;
        // Shuffle a fresh identity permutation so each epoch's order is a
        // pure function of the RNG state at the epoch boundary — exactly
        // what the snapshot captures, keeping resume bitwise-faithful.
        let mut order: Vec<usize> = (0..train.len()).collect();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut diverged: Option<String> = None;

        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let _step = span("train.step");
            store.zero_grads();
            let chunk_len = chunk.len();
            // Fan the batch out: each worker takes a contiguous block of
            // the chunk and returns one detached gradient buffer *per item*
            // (the store is shared read-only for forward passes). Blocks
            // come back in item order, so a left fold over the flattened
            // per-item buffers reproduces the single-worker accumulation
            // association exactly — the step is bitwise-identical for every
            // worker count, not just reproducible per count. The price is
            // one GradBuffer per batch item held live at the merge; batches
            // here are small. A worker panic is contained at the pool
            // boundary and handled like any other divergence: roll back the
            // epoch, don't kill the run.
            let outcome = rt.try_par_chunks(chunk, |ci, _, ids| {
                if let Some(plan) = &chaos {
                    plan.maybe_kill_worker(epoch as u64, ci as u64);
                    plan.maybe_kill_trainer(epoch as u64, harp_chaos::TrainerPhase::Forward);
                }
                let mut items = Vec::with_capacity(ids.len());
                for &i in ids {
                    let (inst, opt_mlu) = &train[i];
                    let mut grads = store.grad_buffer();
                    let mut tape = Tape::new();
                    let splits = {
                        let _fwd = span("forward");
                        model.forward(&mut tape, store, inst)
                    };
                    let mlu = mlu_loss(&mut tape, splits, inst);
                    // normalize: loss = MLU / optimal, averaged over the batch
                    let norm = if *opt_mlu > 0.0 {
                        (1.0 / opt_mlu) as f32
                    } else {
                        1.0
                    };
                    let loss = tape.mul_scalar(mlu, norm / chunk_len as f32);
                    let loss_val = tape.scalar_value(loss) as f64;
                    let _bwd = span("backward");
                    tape.backward_into(loss, &mut grads);
                    items.push((grads, loss_val));
                }
                items
            });
            let partials = match outcome {
                Ok(p) => p,
                Err(wp) => {
                    diverged = Some(wp.to_string());
                    break;
                }
            };
            // Fold per-item gradients and losses in item order
            // (left-associated) — same bits as a serial sweep.
            let mut batch_loss = 0.0f64;
            let mut total: Option<GradBuffer> = None;
            {
                let _merge = span("merge");
                for (g, l) in partials.into_iter().flatten() {
                    batch_loss += l;
                    match &mut total {
                        None => total = Some(g),
                        Some(t) => t.accumulate(&g),
                    }
                }
            }
            if !batch_loss.is_finite() {
                diverged = Some(format!("non-finite batch loss ({batch_loss})"));
                break;
            }
            epoch_loss += batch_loss * chunk_len as f64 / train.len() as f64;
            if let Some(total) = total {
                store.merge_grads(&total);
            }
            if let Some(plan) = &chaos {
                if plan.nan_grad_at(opt.steps()) {
                    store.scale_grads(f32::NAN);
                }
            }
            if harp_obs::enabled() {
                last_grad_norm = store.grad_norm();
            }
            if cfg.clip_norm > 0.0 {
                if let Err(e) = clip_grad_norm(store, cfg.clip_norm) {
                    diverged = Some(e.to_string());
                    break;
                }
            } else {
                // Clipping disabled: the sentinel still has to notice a
                // blown-up gradient before the optimizer bakes it in.
                let gn = store.grad_norm();
                if !gn.is_finite() {
                    diverged = Some(format!("gradient norm is non-finite ({gn})"));
                    break;
                }
            }
            opt.step_and_zero(store);
        }

        if let Some(reason) = diverged {
            harp_obs::event("train.divergence")
                .field("epoch", epoch)
                .field("reason", reason.clone())
                .field("rollbacks_used", rollbacks)
                .emit();
            if rollbacks >= cfg.max_rollbacks {
                // Leave the store on the (finite) epoch-start parameters
                // rather than whatever the diverging step produced.
                store.restore(&anchor_params);
                store.zero_grads();
                return Err(TrainError::Diverged {
                    epoch,
                    rollbacks,
                    detail: reason,
                });
            }
            rollbacks += 1;
            store.restore(&anchor_params);
            store.zero_grads();
            opt = anchor_opt;
            rng = anchor_rng;
            let new_lr = opt.lr() * 0.5;
            opt.set_lr(new_lr);
            harp_obs::event("train.rollback")
                .field("epoch", epoch)
                .field("lr", new_lr)
                .field("rollbacks_used", rollbacks)
                .emit();
            continue; // retry the same epoch
        }

        // validation (pure per-snapshot map, summed in snapshot order)
        let val_score = if val.is_empty() {
            epoch_loss
        } else {
            let _val = span("validate");
            let scores = rt.par_map(val, |_, (inst, opt_mlu)| {
                let (mlu, _) = evaluate_model(model, store, inst, val_opts);
                norm_mlu(mlu, *opt_mlu)
            });
            scores.iter().sum::<f64>() / val.len() as f64
        };
        harp_obs::event("train.epoch")
            .field("epoch", epoch)
            .field("loss", epoch_loss)
            .field("val_norm_mlu", val_score)
            .field("grad_norm", last_grad_norm)
            .field("wall_s", epoch_t0.elapsed().as_secs_f64())
            .field("workers", rt.workers())
            .emit();
        history.push(EpochStats {
            epoch,
            train_loss: epoch_loss,
            val_norm_mlu: val_score,
        });

        if val_score < best_val {
            best_val = val_score;
            best_epoch = epoch;
            best_params = store.snapshot();
            since_best = 0;
        } else {
            since_best += 1;
            if cfg.patience > 0 && since_best >= cfg.patience {
                stop = true;
            }
        }
        epoch += 1;

        if let Some(path) = &snapshot_path {
            if cfg.checkpoint_every > 0 && epoch.is_multiple_of(cfg.checkpoint_every) {
                let snap = TrainSnapshot {
                    adam: opt.export_state(),
                    rng_state: rng.state(),
                    next_epoch: epoch,
                    best_epoch,
                    best_val,
                    since_best,
                    rollbacks,
                    best_params: best_params.clone(),
                    history: history
                        .iter()
                        .map(|h| SnapshotEpoch {
                            epoch: h.epoch,
                            train_loss: h.train_loss,
                            val_norm_mlu: h.val_norm_mlu,
                        })
                        .collect(),
                };
                if let Some(plan) = &chaos {
                    plan.maybe_kill_trainer(
                        (epoch - 1) as u64,
                        harp_chaos::TrainerPhase::Checkpoint,
                    );
                }
                save_snapshot(store, &snap, path, chaos.as_deref())
                    .map_err(TrainError::Checkpoint)?;
                harp_obs::event("train.checkpoint")
                    .field("epoch", epoch - 1)
                    .field("path", path.display().to_string())
                    .emit();
            }
        }
        if let Some(plan) = &chaos {
            if plan.abort_after_epoch((epoch - 1) as u64) {
                harp_obs::event("train.abort")
                    .field("epoch", epoch - 1)
                    .emit();
                return Err(TrainError::Aborted { epoch: epoch - 1 });
            }
        }
    }

    store.restore(&best_params);
    harp_obs::event("train.done")
        .field("model", model.name())
        .field("epochs_run", history.len())
        .field("best_epoch", best_epoch)
        .field("best_val_norm_mlu", best_val)
        .field("rollbacks", rollbacks)
        .emit();
    Ok(TrainReport {
        history,
        best_epoch,
        best_val,
        rollbacks,
        resumed_from,
    })
}

/// Debug-build pre-flight: record one training graph and run the
/// `harp-verify` static analyzer over it before committing to a full run.
///
/// Graph-structure bugs (a parameter the loss can't reach, an internally
/// inconsistent shape, a NaN constant) otherwise surface as a silently flat
/// loss curve hours later. Errors panic with the full report; warnings and
/// notes route through the observability sink (`preflight.diagnostic`
/// events, with a stderr fallback when no sink is configured) so JSONL
/// consumers see pre-flight findings alongside training metrics. Compiled
/// out of release builds, where `train_model` pays nothing.
fn preflight(model: &dyn SplitModel, store: &ParamStore, inst: &Instance) {
    let mut tape = Tape::new();
    let splits = model.forward(&mut tape, store, inst);
    let loss = mlu_loss(&mut tape, splits, inst);
    let report = harp_verify::analyze(&tape, loss, Some(store));
    assert!(
        report.is_clean(),
        "training-graph pre-flight failed:\n{}",
        report.summary()
    );
    for d in &report.diagnostics {
        harp_obs::warn_always(
            "preflight.diagnostic",
            &[
                ("severity", d.severity.to_string().into()),
                ("code", d.code.into()),
                ("detail", d.to_string().into()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Harp, HarpConfig};
    use harp_opt::MluOracle;
    use harp_paths::TunnelSet;
    use harp_topology::Topology;
    use harp_traffic::TrafficMatrix;
    use rand::Rng;

    fn diamond() -> (Topology, TunnelSet) {
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 3, 10.0).unwrap();
        topo.add_link(0, 2, 20.0).unwrap();
        topo.add_link(2, 3, 20.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);
        (topo, tunnels)
    }

    #[test]
    fn training_improves_validation_norm_mlu() {
        let (topo, tunnels) = diamond();
        let mut rng = StdRng::seed_from_u64(5);
        let oracle = MluOracle::default();
        let make = |rng: &mut StdRng| {
            let mut tm = TrafficMatrix::zeros(4);
            tm.set_demand(0, 3, rng.gen_range(5.0..15.0));
            tm.set_demand(3, 0, rng.gen_range(2.0..8.0));
            let inst = Instance::compile(&topo, &tunnels, &tm);
            let opt = oracle.solve(&inst.program).mlu;
            (inst, opt)
        };
        let train_set: Vec<(Instance, f64)> = (0..8).map(|_| make(&mut rng)).collect();
        let val_set: Vec<(Instance, f64)> = (0..3).map(|_| make(&mut rng)).collect();
        let train_refs: Vec<(&Instance, f64)> = train_set.iter().map(|(i, o)| (i, *o)).collect();
        let val_refs: Vec<(&Instance, f64)> = val_set.iter().map(|(i, o)| (i, *o)).collect();

        let mut store = ParamStore::new();
        let mut mrng = StdRng::seed_from_u64(1);
        let cfg = HarpConfig {
            gnn_layers: 2,
            gnn_hidden: 4,
            d_model: 8,
            settrans_layers: 1,
            heads: 1,
            d_ff: 16,
            mlp_hidden: 16,
            rau_iters: 3,
        };
        let harp = Harp::new(&mut store, &mut mrng, cfg);

        // pre-training validation score
        let mut pre = 0.0;
        for (inst, o) in &val_refs {
            let (mlu, _) = evaluate_model(&harp, &store, inst, EvalOptions::default());
            pre += norm_mlu(mlu, *o);
        }
        pre /= val_refs.len() as f64;

        let report = train_model(
            &harp,
            &mut store,
            &train_refs,
            &val_refs,
            TrainConfig {
                epochs: 15,
                batch_size: 4,
                lr: 5e-3,
                ..Default::default()
            },
            EvalOptions::default(),
        )
        .expect("healthy training run");
        assert!(!report.history.is_empty());
        assert_eq!(report.rollbacks, 0);
        assert!(
            report.best_val <= pre + 1e-9,
            "best {} vs pre {}",
            report.best_val,
            pre
        );
        // the store holds the best checkpoint: re-evaluating reproduces it
        let mut post = 0.0;
        for (inst, o) in &val_refs {
            let (mlu, _) = evaluate_model(&harp, &store, inst, EvalOptions::default());
            post += norm_mlu(mlu, *o);
        }
        post /= val_refs.len() as f64;
        assert!((post - report.best_val).abs() < 1e-9);
    }

    /// Train HARP on a small zoo-style diamond topology with the given
    /// worker count and return the full report (fresh store/model/data each
    /// call so runs are independent).
    fn train_with_workers(workers: usize) -> TrainReport {
        let (topo, tunnels) = diamond();
        let mut rng = StdRng::seed_from_u64(5);
        let oracle = MluOracle::default();
        let make = |rng: &mut StdRng| {
            let mut tm = TrafficMatrix::zeros(4);
            tm.set_demand(0, 3, rng.gen_range(5.0..15.0));
            tm.set_demand(3, 0, rng.gen_range(2.0..8.0));
            let inst = Instance::compile(&topo, &tunnels, &tm);
            let opt = oracle.solve(&inst.program).mlu;
            (inst, opt)
        };
        let train_set: Vec<(Instance, f64)> = (0..9).map(|_| make(&mut rng)).collect();
        let val_set: Vec<(Instance, f64)> = (0..3).map(|_| make(&mut rng)).collect();
        let train_refs: Vec<(&Instance, f64)> = train_set.iter().map(|(i, o)| (i, *o)).collect();
        let val_refs: Vec<(&Instance, f64)> = val_set.iter().map(|(i, o)| (i, *o)).collect();

        let mut store = ParamStore::new();
        let mut mrng = StdRng::seed_from_u64(1);
        let cfg = HarpConfig {
            gnn_layers: 2,
            gnn_hidden: 4,
            d_model: 8,
            settrans_layers: 1,
            heads: 1,
            d_ff: 16,
            mlp_hidden: 16,
            rau_iters: 2,
        };
        let harp = Harp::new(&mut store, &mut mrng, cfg);
        train_model(
            &harp,
            &mut store,
            &train_refs,
            &val_refs,
            TrainConfig {
                epochs: 6,
                batch_size: 4,
                lr: 5e-3,
                workers,
                ..Default::default()
            },
            EvalOptions::default(),
        )
        .expect("healthy training run")
    }

    /// The paper-protocol determinism contract: fanning a batch across 2 or
    /// 4 workers must reproduce the serial run's model selection exactly
    /// and its scores to floating-point-reduction tolerance (1e-5 NormMLU).
    #[test]
    fn parallel_training_matches_serial_within_tolerance() {
        let serial = train_with_workers(1);
        for workers in [2, 4] {
            let par = train_with_workers(workers);
            assert_eq!(
                par.best_epoch, serial.best_epoch,
                "{workers} workers picked a different best epoch"
            );
            assert_eq!(par.history.len(), serial.history.len());
            assert!(
                (par.best_val - serial.best_val).abs() < 1e-5,
                "{workers} workers: best val {} vs serial {}",
                par.best_val,
                serial.best_val
            );
            for (p, s) in par.history.iter().zip(&serial.history) {
                assert!(
                    (p.val_norm_mlu - s.val_norm_mlu).abs() < 1e-5,
                    "{workers} workers: epoch {} val {} vs serial {}",
                    p.epoch,
                    p.val_norm_mlu,
                    s.val_norm_mlu
                );
                assert!(
                    (p.train_loss - s.train_loss).abs() < 1e-4,
                    "{workers} workers: epoch {} train loss {} vs serial {}",
                    p.epoch,
                    p.train_loss,
                    s.train_loss
                );
            }
        }
    }

    /// Re-running with the same worker count is bitwise-reproducible.
    #[test]
    fn parallel_training_is_reproducible_per_worker_count() {
        let a = train_with_workers(2);
        let b = train_with_workers(2);
        assert_eq!(a.best_epoch, b.best_epoch);
        assert_eq!(a.best_val.to_bits(), b.best_val.to_bits());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.train_loss.to_bits(), y.train_loss.to_bits());
            assert_eq!(x.val_norm_mlu.to_bits(), y.val_norm_mlu.to_bits());
        }
    }

    #[test]
    fn early_stopping_respects_patience() {
        let (topo, tunnels) = diamond();
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, 10.0);
        let inst = Instance::compile(&topo, &tunnels, &tm);
        let oracle = MluOracle::default();
        let opt = oracle.solve(&inst.program).mlu;
        let train_refs = vec![(&inst, opt)];
        let val_refs = vec![(&inst, opt)];
        let mut store = ParamStore::new();
        let mut mrng = StdRng::seed_from_u64(2);
        let cfg = HarpConfig {
            gnn_layers: 1,
            gnn_hidden: 4,
            d_model: 8,
            settrans_layers: 1,
            heads: 1,
            d_ff: 8,
            mlp_hidden: 8,
            rau_iters: 1,
        };
        let harp = Harp::new(&mut store, &mut mrng, cfg);
        let report = train_model(
            &harp,
            &mut store,
            &train_refs,
            &val_refs,
            TrainConfig {
                epochs: 200,
                batch_size: 1,
                lr: 1e-3,
                patience: 3,
                ..Default::default()
            },
            EvalOptions::default(),
        )
        .expect("healthy training run");
        assert!(report.history.len() <= 200);
        assert!(report.history.len() > report.best_epoch);
    }
}
