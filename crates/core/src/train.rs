//! Mini-batch training with validation-based model selection.
//!
//! The paper's protocol (§4): train until convergence, checkpoint every
//! epoch, pick the checkpoint with the best validation score. Losses are
//! per-snapshot MLU, optionally normalized by the snapshot's optimal MLU
//! (a per-instance constant supplied by the caller, which conditions the
//! objective across heterogeneous snapshots).

use harp_nn::{clip_grad_norm, Adam, AdamConfig};
use harp_tensor::{ParamStore, Tape};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

use crate::eval::{evaluate_model, norm_mlu, EvalOptions};
use crate::loss::mlu_loss;
use crate::{Instance, SplitModel};

/// Training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Snapshots per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip_norm: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Stop after this many epochs without validation improvement
    /// (0 disables early stopping).
    pub patience: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 8,
            lr: 2e-3,
            clip_norm: 5.0,
            seed: 17,
            patience: 8,
        }
    }
}

/// Per-epoch record.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean (normalized) training loss.
    pub train_loss: f64,
    /// Mean validation NormMLU.
    pub val_norm_mlu: f64,
}

/// The outcome of a training run. The store is left holding the
/// best-validation parameters.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub history: Vec<EpochStats>,
    /// Index of the selected epoch.
    pub best_epoch: usize,
    /// Its validation NormMLU.
    pub best_val: f64,
}

/// Train `model` (whose parameters live in `store`).
///
/// `train` and `val` pair each instance with its **optimal MLU** (from
/// `harp-opt`); training losses are normalized by it and validation uses
/// NormMLU. `val_opts` controls rescaling at validation (match how the
/// scheme will be evaluated).
pub fn train_model(
    model: &dyn SplitModel,
    store: &mut ParamStore,
    train: &[(&Instance, f64)],
    val: &[(&Instance, f64)],
    cfg: TrainConfig,
    val_opts: EvalOptions,
) -> TrainReport {
    assert!(!train.is_empty(), "empty training set");
    if cfg!(debug_assertions) {
        preflight(model, store, train[0].0);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(store, AdamConfig::with_lr(cfg.lr));

    let mut history = Vec::with_capacity(cfg.epochs);
    let mut best_val = f64::INFINITY;
    let mut best_epoch = 0usize;
    let mut best_params = store.snapshot();
    let mut since_best = 0usize;

    let mut order: Vec<usize> = (0..train.len()).collect();
    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            store.zero_grads();
            for &i in chunk {
                let (inst, opt_mlu) = &train[i];
                let mut tape = Tape::new();
                let splits = model.forward(&mut tape, store, inst);
                let mlu = mlu_loss(&mut tape, splits, inst);
                // normalize: loss = MLU / optimal, averaged over the batch
                let norm = if *opt_mlu > 0.0 {
                    (1.0 / opt_mlu) as f32
                } else {
                    1.0
                };
                let loss = tape.mul_scalar(mlu, norm / chunk.len() as f32);
                epoch_loss +=
                    tape.scalar_value(loss) as f64 * chunk.len() as f64 / train.len() as f64;
                tape.backward(loss, store);
            }
            if cfg.clip_norm > 0.0 {
                clip_grad_norm(store, cfg.clip_norm);
            }
            opt.step_and_zero(store);
        }

        // validation
        let val_score = if val.is_empty() {
            epoch_loss
        } else {
            let mut sum = 0.0;
            for (inst, opt_mlu) in val {
                let (mlu, _) = evaluate_model(model, store, inst, val_opts);
                sum += norm_mlu(mlu, *opt_mlu);
            }
            sum / val.len() as f64
        };
        history.push(EpochStats {
            epoch,
            train_loss: epoch_loss,
            val_norm_mlu: val_score,
        });

        if val_score < best_val {
            best_val = val_score;
            best_epoch = epoch;
            best_params = store.snapshot();
            since_best = 0;
        } else {
            since_best += 1;
            if cfg.patience > 0 && since_best >= cfg.patience {
                break;
            }
        }
    }

    store.restore(&best_params);
    TrainReport {
        history,
        best_epoch,
        best_val,
    }
}

/// Debug-build pre-flight: record one training graph and run the
/// `harp-verify` static analyzer over it before committing to a full run.
///
/// Graph-structure bugs (a parameter the loss can't reach, an internally
/// inconsistent shape, a NaN constant) otherwise surface as a silently flat
/// loss curve hours later. Errors panic with the full report; warnings and
/// notes go to stderr. Compiled out of release builds, where `train_model`
/// pays nothing.
fn preflight(model: &dyn SplitModel, store: &ParamStore, inst: &Instance) {
    let mut tape = Tape::new();
    let splits = model.forward(&mut tape, store, inst);
    let loss = mlu_loss(&mut tape, splits, inst);
    let report = harp_verify::analyze(&tape, loss, Some(store));
    assert!(
        report.is_clean(),
        "training-graph pre-flight failed:\n{}",
        report.summary()
    );
    for d in &report.diagnostics {
        eprintln!("pre-flight: {d}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Harp, HarpConfig};
    use harp_opt::MluOracle;
    use harp_paths::TunnelSet;
    use harp_topology::Topology;
    use harp_traffic::TrafficMatrix;
    use rand::Rng;

    fn diamond() -> (Topology, TunnelSet) {
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 3, 10.0).unwrap();
        topo.add_link(0, 2, 20.0).unwrap();
        topo.add_link(2, 3, 20.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);
        (topo, tunnels)
    }

    #[test]
    fn training_improves_validation_norm_mlu() {
        let (topo, tunnels) = diamond();
        let mut rng = StdRng::seed_from_u64(5);
        let oracle = MluOracle::default();
        let make = |rng: &mut StdRng| {
            let mut tm = TrafficMatrix::zeros(4);
            tm.set_demand(0, 3, rng.gen_range(5.0..15.0));
            tm.set_demand(3, 0, rng.gen_range(2.0..8.0));
            let inst = Instance::compile(&topo, &tunnels, &tm);
            let opt = oracle.solve(&inst.program).mlu;
            (inst, opt)
        };
        let train_set: Vec<(Instance, f64)> = (0..8).map(|_| make(&mut rng)).collect();
        let val_set: Vec<(Instance, f64)> = (0..3).map(|_| make(&mut rng)).collect();
        let train_refs: Vec<(&Instance, f64)> = train_set.iter().map(|(i, o)| (i, *o)).collect();
        let val_refs: Vec<(&Instance, f64)> = val_set.iter().map(|(i, o)| (i, *o)).collect();

        let mut store = ParamStore::new();
        let mut mrng = StdRng::seed_from_u64(1);
        let cfg = HarpConfig {
            gnn_layers: 2,
            gnn_hidden: 4,
            d_model: 8,
            settrans_layers: 1,
            heads: 1,
            d_ff: 16,
            mlp_hidden: 16,
            rau_iters: 3,
        };
        let harp = Harp::new(&mut store, &mut mrng, cfg);

        // pre-training validation score
        let mut pre = 0.0;
        for (inst, o) in &val_refs {
            let (mlu, _) = evaluate_model(&harp, &store, inst, EvalOptions::default());
            pre += norm_mlu(mlu, *o);
        }
        pre /= val_refs.len() as f64;

        let report = train_model(
            &harp,
            &mut store,
            &train_refs,
            &val_refs,
            TrainConfig {
                epochs: 15,
                batch_size: 4,
                lr: 5e-3,
                ..Default::default()
            },
            EvalOptions::default(),
        );
        assert!(!report.history.is_empty());
        assert!(
            report.best_val <= pre + 1e-9,
            "best {} vs pre {}",
            report.best_val,
            pre
        );
        // the store holds the best checkpoint: re-evaluating reproduces it
        let mut post = 0.0;
        for (inst, o) in &val_refs {
            let (mlu, _) = evaluate_model(&harp, &store, inst, EvalOptions::default());
            post += norm_mlu(mlu, *o);
        }
        post /= val_refs.len() as f64;
        assert!((post - report.best_val).abs() < 1e-9);
    }

    #[test]
    fn early_stopping_respects_patience() {
        let (topo, tunnels) = diamond();
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, 10.0);
        let inst = Instance::compile(&topo, &tunnels, &tm);
        let oracle = MluOracle::default();
        let opt = oracle.solve(&inst.program).mlu;
        let train_refs = vec![(&inst, opt)];
        let val_refs = vec![(&inst, opt)];
        let mut store = ParamStore::new();
        let mut mrng = StdRng::seed_from_u64(2);
        let cfg = HarpConfig {
            gnn_layers: 1,
            gnn_hidden: 4,
            d_model: 8,
            settrans_layers: 1,
            heads: 1,
            d_ff: 8,
            mlp_hidden: 8,
            rau_iters: 1,
        };
        let harp = Harp::new(&mut store, &mut mrng, cfg);
        let report = train_model(
            &harp,
            &mut store,
            &train_refs,
            &val_refs,
            TrainConfig {
                epochs: 200,
                batch_size: 1,
                lr: 1e-3,
                patience: 3,
                ..Default::default()
            },
            EvalOptions::default(),
        );
        assert!(report.history.len() <= 200);
        assert!(report.history.len() > report.best_epoch);
    }
}
