//! The DOTE baseline (Perry et al., NSDI '23), adapted as in the paper's
//! §4: a feed-forward network from a single traffic matrix to split
//! ratios for a *fixed* topology / tunnel layout.
//!
//! DOTE deliberately models nothing but the demand vector: no nodes, no
//! edges, no capacities, no tunnel structure. Its input and output layouts
//! are positional, which is exactly why it cannot transfer across node
//! relabelings, tunnel reorderings, or topology changes (§2.3) — this
//! implementation preserves those properties faithfully.

use harp_nn::{Activation, Mlp};
use harp_tensor::{ParamStore, Tape, Var};
use rand::Rng;

use crate::{Instance, SplitModel};

/// DOTE: `MLP(demand vector) -> per-tunnel logits -> per-flow softmax`.
///
/// The network is sized for a specific `(num_flows, num_tunnels)` layout at
/// construction; forwarding an instance with a different layout panics
/// (DOTE is a fixed-topology scheme).
#[derive(Clone, Debug)]
pub struct Dote {
    mlp: Mlp,
    num_flows: usize,
    num_tunnels: usize,
    /// Fixed input normalization (1 / mean positive demand of the sample
    /// instance). Deliberately *not* derived from capacities: DOTE's inputs
    /// must be capacity-blind, as in the original system.
    input_scale: f32,
}

impl Dote {
    /// Build for the layout of `instance` with the given hidden widths
    /// (the paper's DOTE uses a plain MLP; its best AnonNet model has ~1M
    /// parameters — ours defaults smaller but the same family).
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        instance: &Instance,
        hidden: &[usize],
    ) -> Self {
        let mut widths = Vec::with_capacity(hidden.len() + 2);
        widths.push(instance.num_flows);
        widths.extend_from_slice(hidden);
        widths.push(instance.num_tunnels);
        let mlp = Mlp::new(
            store,
            rng,
            "dote",
            &widths,
            Activation::LeakyRelu(0.01),
            Activation::Identity,
        );
        let raw: Vec<f64> = instance
            .flow_demands
            .iter()
            .map(|&d| d as f64 * instance.cap_unit)
            .filter(|d| *d > 0.0)
            .collect();
        let mean = if raw.is_empty() {
            1.0
        } else {
            raw.iter().sum::<f64>() / raw.len() as f64
        };
        Dote {
            mlp,
            num_flows: instance.num_flows,
            num_tunnels: instance.num_tunnels,
            input_scale: (1.0 / mean) as f32,
        }
    }
}

impl SplitModel for Dote {
    fn forward(&self, t: &mut Tape, s: &ParamStore, inst: &Instance) -> Var {
        assert_eq!(
            (inst.num_flows, inst.num_tunnels),
            (self.num_flows, self.num_tunnels),
            "DOTE is fixed-layout: built for ({}, {}), got ({}, {})",
            self.num_flows,
            self.num_tunnels,
            inst.num_flows,
            inst.num_tunnels
        );
        let demands: Vec<f32> = inst
            .flow_demands
            .iter()
            .map(|&d| d * inst.cap_unit as f32 * self.input_scale)
            .collect();
        let x = t.constant(vec![1, inst.num_flows], demands);
        let logits = self.mlp.forward(t, s, x);
        let logits = t.reshape(logits, vec![inst.num_tunnels]);
        t.segment_softmax(logits, inst.tunnel_flow.clone(), inst.num_flows)
    }

    fn name(&self) -> &'static str {
        "DOTE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mlu_loss;
    use harp_paths::TunnelSet;
    use harp_topology::Topology;
    use harp_traffic::TrafficMatrix;
    use rand::{rngs::StdRng, SeedableRng};

    fn diamond() -> (Topology, TunnelSet) {
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 3, 10.0).unwrap();
        topo.add_link(0, 2, 20.0).unwrap();
        topo.add_link(2, 3, 20.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);
        (topo, tunnels)
    }

    fn instance(demand: f64) -> Instance {
        let (topo, tunnels) = diamond();
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, demand);
        tm.set_demand(3, 0, demand / 2.0);
        Instance::compile(&topo, &tunnels, &tm)
    }

    #[test]
    fn produces_valid_splits_and_trains() {
        let inst = instance(12.0);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let dote = Dote::new(&mut store, &mut rng, &inst, &[32, 32]);
        let loss_of = |store: &ParamStore| {
            let mut t = Tape::new();
            let s = dote.forward(&mut t, store, &inst);
            let l = mlu_loss(&mut t, s, &inst);
            (t, s, l)
        };
        let (t0, s0, l0) = loss_of(&store);
        let before = t0.scalar_value(l0);
        let sv: Vec<f64> = t0.value(s0).iter().map(|&x| x as f64).collect();
        assert!(inst.program.splits_are_valid(&sv, 1e-4));
        let mut opt = harp_nn::Adam::new(&store, harp_nn::AdamConfig::with_lr(1e-2));
        for _ in 0..40 {
            let (t, _, l) = loss_of(&store);
            store.zero_grads();
            t.backward(l, &mut store);
            opt.step_and_zero(&mut store);
        }
        let (t1, _, l1) = loss_of(&store);
        assert!(t1.scalar_value(l1) < before);
    }

    #[test]
    fn output_depends_only_on_demands() {
        // capacities do not enter DOTE's input: changing them must not
        // change the output (the paper's critique, Fig 5 mechanism)
        let inst = instance(12.0);
        let (topo, tunnels) = diamond();
        let mut topo2 = topo.clone();
        for e in 0..topo2.num_edges() {
            topo2.set_capacity(e, 5.0).unwrap();
        }
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, 12.0);
        tm.set_demand(3, 0, 6.0);
        let inst2 = Instance::compile(&topo2, &tunnels, &tm);

        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let dote = Dote::new(&mut store, &mut rng, &inst, &[16]);
        let mut t1 = Tape::new();
        let s1 = dote.forward(&mut t1, &store, &inst);
        let mut t2 = Tape::new();
        let s2 = dote.forward(&mut t2, &store, &inst2);
        // capacity scaling changes the demand normalization; compare with
        // matching cap_unit to isolate capacity blindness
        assert_eq!(inst.num_tunnels, inst2.num_tunnels);
        let a = t1.value(s1);
        let b = t2.value(s2);
        // demands were scaled differently (cap_unit differs), so allow the
        // *structure* check: same splits when inputs coincide
        if (inst.cap_unit - inst2.cap_unit).abs() < 1e-12 {
            assert_eq!(a, b);
        } else {
            // at minimum, DOTE had no way to see the capacity change other
            // than through global demand scaling
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    #[should_panic(expected = "fixed-layout")]
    fn rejects_different_layout() {
        let inst = instance(12.0);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let dote = Dote::new(&mut store, &mut rng, &inst, &[8]);

        // an instance with a different tunnel count
        let (topo, _) = diamond();
        let tunnels1 = TunnelSet::k_shortest(&topo, &[0, 3], 1, 0.0);
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, 1.0);
        let inst1 = Instance::compile(&topo, &tunnels1, &tm);
        let mut t = Tape::new();
        let _ = dote.forward(&mut t, &store, &inst1);
    }

    #[test]
    fn sensitive_to_demand_vector_order() {
        // transposing the TM permutes DOTE's input vector and changes its
        // output for the corresponding flows — the §2.3 failure mode.
        let (topo, tunnels) = diamond();
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, 12.0);
        tm.set_demand(3, 0, 3.0);
        let inst = Instance::compile(&topo, &tunnels, &tm);
        let inst_t = Instance::compile(&topo, &tunnels, &tm.transpose());

        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let dote = Dote::new(&mut store, &mut rng, &inst, &[16]);
        let mut t1 = Tape::new();
        let s1 = dote.forward(&mut t1, &store, &inst);
        let mut t2 = Tape::new();
        let s2 = dote.forward(&mut t2, &store, &inst_t);
        // flow 0 of inst is (0,3) with demand 12; in inst_t the demand 12
        // sits on flow (3,0). An invariant model would swap the splits
        // accordingly; DOTE (untrained, generic weights) does not.
        let a = t1.value(s1).to_vec();
        let b = t2.value(s2).to_vec();
        // splits for flow (0,3) under inst vs splits for (3,0) under inst_t
        let differs = (a[0] - b[2]).abs() > 1e-6 || (a[1] - b[3]).abs() > 1e-6;
        assert!(differs, "DOTE unexpectedly transpose-invariant");
    }
}
