//! Evaluation: NormMLU against the optimal oracle, CDFs, percentiles and
//! boxplot statistics (the paper's reporting vocabulary).

use harp_tensor::ParamStore;

use crate::infer::run_inference;
use crate::{Instance, SplitModel};

/// Evaluation-time policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct EvalOptions {
    /// Apply the paper's *local rescaling* around fully-failed links (used
    /// for DOTE/TEAL/HARP-NoRAU; HARP runs without rescaling, §4).
    pub rescale_failed: bool,
    /// Capacity at or below this counts as a full failure.
    pub failed_threshold: f64,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            rescale_failed: false,
            failed_threshold: 1e-4,
        }
    }
}

impl EvalOptions {
    /// Options with local rescaling enabled.
    pub fn with_rescaling() -> Self {
        EvalOptions {
            rescale_failed: true,
            ..Default::default()
        }
    }
}

/// Run `model` on `instance` and return `(mlu, splits)` evaluated exactly
/// (f64 path program), applying rescaling if requested. Thin wrapper over
/// [`run_inference`](crate::run_inference), kept for the figure harness.
pub fn evaluate_model(
    model: &dyn SplitModel,
    store: &ParamStore,
    instance: &Instance,
    opts: EvalOptions,
) -> (f64, Vec<f64>) {
    let inf = run_inference(model, store, instance, opts);
    (inf.mlu, inf.splits)
}

/// NormMLU: the scheme's MLU over the optimal MLU, floored at 1 (tiny
/// solver gaps can otherwise make a scheme look "better than optimal").
pub fn norm_mlu(model_mlu: f64, optimal_mlu: f64) -> f64 {
    if optimal_mlu <= 0.0 {
        if model_mlu <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        (model_mlu / optimal_mlu).max(1.0)
    }
}

/// Sorted `(value, cumulative_fraction)` pairs for CDF plotting.
pub fn cdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len().max(1) as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// The `p`-th percentile (0..=100) by linear interpolation, or `None` for
/// an empty input or a `p` outside `0..=100`.
///
/// Consumers that aggregate live measurement windows (the serve stats
/// endpoint, rolling latency reports) routinely see empty slices — an
/// empty window is "no data yet", not a caller bug, so this must not
/// panic.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    if v.len() == 1 {
        return Some(v[0]);
    }
    let pos = p / 100.0 * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Fraction of values `<= threshold` (e.g. "98% of snapshots are within
/// 1.11 of optimal").
pub fn fraction_at_most(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= threshold).count() as f64 / values.len() as f64
}

/// Five-number summary plus p90 (the paper's boxplots mark p90 with a
/// dashed line and run the top whisker to the max).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxplotStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

/// Compute [`BoxplotStats`], or `None` for an empty input.
pub fn boxplot_stats(values: &[f64]) -> Option<BoxplotStats> {
    Some(BoxplotStats {
        min: percentile(values, 0.0)?,
        q1: percentile(values, 25.0)?,
        median: percentile(values, 50.0)?,
        q3: percentile(values, 75.0)?,
        p90: percentile(values, 90.0)?,
        max: percentile(values, 100.0)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_mlu_floors_at_one() {
        assert_eq!(norm_mlu(0.5, 1.0), 1.0);
        assert_eq!(norm_mlu(2.0, 1.0), 2.0);
        assert_eq!(norm_mlu(1.0, 0.0), f64::INFINITY);
        assert_eq!(norm_mlu(0.0, 0.0), 1.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let pts = cdf_points(&[3.0, 1.0, 2.0]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (3.0, 1.0));
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(3.0));
        assert_eq!(percentile(&v, 100.0), Some(5.0));
        assert!((percentile(&v, 90.0).unwrap() - 4.6).abs() < 1e-12);
    }

    #[test]
    fn percentile_of_empty_or_out_of_range_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[1.0], -0.1), None);
        assert_eq!(percentile(&[1.0], 100.1), None);
        assert_eq!(percentile(&[7.5], 50.0), Some(7.5));
        assert_eq!(boxplot_stats(&[]), None);
    }

    #[test]
    fn fraction_counts() {
        let v = [1.0, 1.05, 1.11, 1.5];
        assert_eq!(fraction_at_most(&v, 1.11), 0.75);
        assert_eq!(fraction_at_most(&[], 1.0), 0.0);
    }

    #[test]
    fn boxplot_summary() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = boxplot_stats(&v).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 100.0);
        assert!((b.median - 50.5).abs() < 1e-9);
        assert!(b.q1 < b.median && b.median < b.q3 && b.q3 < b.p90);
    }
}
