//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo;
        let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Just;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::from_name("fixed_and_ranged_lengths");
        let fixed = vec(Just(7u32), 6);
        assert_eq!(fixed.generate(&mut rng), vec![7; 6]);
        let ranged = vec(0usize..10, 1..5);
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
