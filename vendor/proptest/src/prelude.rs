//! One-stop import mirroring `proptest::prelude`.

pub use crate::strategy::{Just, Strategy};
pub use crate::{
    prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, ProptestConfig, TestCaseError,
    TestCaseResult,
};
