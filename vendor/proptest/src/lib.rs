//! Offline stand-in for the subset of `proptest` the harp workspace uses.
//!
//! Implements random-input property testing with the upstream macro surface
//! (`proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assume!`) and strategy
//! combinators (`Just`, ranges, `collection::vec`). Unlike upstream there is
//! no shrinking: a failing case panics with the generated inputs, which the
//! deterministic per-test seed makes reproducible.

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;

pub use strategy::{Just, Strategy};

/// Result alias used by macro-generated test closures.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case, draw another.
    Reject,
    /// `prop_assert!` failed: the property is violated.
    Fail(String),
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The generator driving strategies: SplitMix64, seeded per test from the
/// test's name so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic seed from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// The macro surface. Test bodies run inside a closure returning
/// [`TestCaseResult`]; `prop_assert!`/`prop_assume!` early-return from it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            let mut ran: u32 = 0;
            let mut drawn: u32 = 0;
            while ran < cfg.cases && drawn < cfg.cases * 16 {
                drawn += 1;
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest '{}' case {} failed: {}", stringify!($name), ran, msg)
                    }
                }
            }
            assert!(
                ran > 0,
                "proptest '{}' rejected every generated case",
                stringify!($name)
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a proptest body; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(stringify!($cond).to_string()));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a proptest body; failure reports both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::Fail(format!(
                "{} != {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::Fail(format!(
                "{} ({:?} vs {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Skip cases whose inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// One-of strategy: `prop_oneof![s1, s2, ...]` picks uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
