//! Input-generation strategies.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Box a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u32, u64, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges_stay_in_bounds");
        for _ in 0..500 {
            let x = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let y = (-1.5f32..1.5).generate(&mut rng);
            assert!((-1.5..1.5).contains(&y));
            let z = (-4i32..=4).generate(&mut rng);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn union_and_map() {
        let mut rng = TestRng::from_name("union_and_map");
        let s = Union::new(vec![boxed(Just(1usize)), boxed(Just(2usize))]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng)] = true;
        }
        assert!(seen[1] && seen[2] && !seen[0]);
        let doubled = Just(21usize).prop_map(|x| x * 2);
        assert_eq!(doubled.generate(&mut rng), 42);
    }
}
