//! Boolean strategies (upstream-compatible subset).

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy generating `true`/`false` with equal probability.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any;

/// `proptest::bool::ANY` — a uniformly random boolean.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_values() {
        let mut rng = TestRng::from_name("bool_any");
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[ANY.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
