//! Offline stand-in for the subset of `serde_json` the harp workspace uses.
//!
//! Provides the `Value` tree, the `json!` macro, `Map`, and string
//! (de)serialization. There is no serde data model underneath: instead of
//! generic `Serialize`/`Deserialize` derives, conversion goes through the
//! [`ToJson`] / [`FromJson`] traits, implemented for the concrete types the
//! workspace persists (number maps, float vectors, …).

mod parse;
mod print;
mod value;

pub use value::{Map, Number, Value};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Error raised by [`from_str`] / [`to_string`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub(crate) String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait FromJson: Sized {
    /// Parse from JSON, or `None` on a structural mismatch.
    fn from_json(v: &Value) -> Option<Self>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Option<Self> {
        Some(v.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::from(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Option<Self> {
        v.as_f64()
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::from(*self)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Value) -> Option<Self> {
        v.as_f64().map(|x| x as f32)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Value {
        Value::from(*self)
    }
}

impl FromJson for usize {
    fn from_json(v: &Value) -> Option<Self> {
        let x = v.as_f64()?;
        (x >= 0.0 && x.fract() == 0.0).then_some(x as usize)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Option<Self> {
        v.as_str().map(str::to_string)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Option<Self> {
        v.as_array()?.iter().map(T::from_json).collect()
    }
}

impl<V: ToJson> ToJson for HashMap<String, V> {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        // deterministic output regardless of hash order
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        for k in keys {
            m.insert(k.clone(), self[k].to_json());
        }
        Value::Object(m)
    }
}

impl<V: FromJson> FromJson for HashMap<String, V> {
    fn from_json(v: &Value) -> Option<Self> {
        let obj = v.as_object()?;
        obj.iter()
            .map(|(k, v)| V::from_json(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_json());
        }
        Value::Object(m)
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Value) -> Option<Self> {
        let obj = v.as_object()?;
        obj.iter()
            .map(|(k, v)| V::from_json(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: ToJson>(value: &T) -> Result<String, Error> {
    Ok(print::print(&value.to_json(), None))
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: ToJson>(value: &T) -> Result<String, Error> {
    Ok(print::print(&value.to_json(), Some(0)))
}

/// Parse a JSON document.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    let v = parse::parse(s)?;
    T::from_json(&v).ok_or_else(|| Error("type mismatch".to_string()))
}

/// Build a [`Value`] with JSON-like syntax: `json!({"k": expr, "a": [1, 2]})`.
///
/// The implementation is the standard token-munching scheme (as in upstream
/// serde_json) so object/array values can be arbitrary Rust expressions.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => { $crate::json_internal!($($json)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- arrays: accumulate elements into [$($elems:expr,)*] ----
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- objects: munch key tokens, then the value expression ----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).to_string(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).to_string(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- entry points ----
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "n": 3,
            "name": "x",
            "flag": true,
            "arr": [1.5, 2],
            "nested": { "a": null },
        });
        assert_eq!(v["n"], 3);
        assert_eq!(v["name"].as_str(), Some("x"));
        assert_eq!(v["arr"].as_array().unwrap().len(), 2);
        assert!(v["nested"]["a"].is_null());
    }

    #[test]
    fn roundtrip_map_of_f64() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1.5f64);
        m.insert("b".to_string(), -2.0);
        let s = to_string(&m).unwrap();
        let back: HashMap<String, f64> = from_str(&s).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn roundtrip_value_pretty() {
        let v = json!({ "xs": [1, 2.5, -3], "s": "he\"llo\n", "b": false });
        let s = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{ nope").is_err());
        assert!(from_str::<Value>("[1, 2,,]").is_err());
        assert!(from_str::<Value>("").is_err());
    }
}
