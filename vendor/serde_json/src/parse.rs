//! A small recursive-descent JSON parser.

use crate::value::{Map, Number, Value};
use crate::Error;

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance over one UTF-8 scalar
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(|x| Value::Number(Number(x)))
            .map_err(|_| self.err("invalid number"))
    }
}
