//! The JSON value tree.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// A JSON number. Stored as `f64`, which covers every value the workspace
/// serializes (counts, MLUs, CDF points).
#[derive(Clone, Copy, PartialEq)]
pub struct Number(pub(crate) f64);

impl Number {
    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        self.0
    }
}

impl fmt::Debug for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A JSON object with sorted keys (matching upstream serde_json's default
/// `BTreeMap` backing).
pub type Map = BTreeMap<String, Value>;

/// A JSON document node.
#[derive(Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always `f64`-backed here).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// `true` if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.0),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        (x >= 0.0 && x.fract() == 0.0).then_some(x as u64)
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup that tolerates missing keys (returns `Null`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::print::print(self, None))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::print::print(self, None))
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

// Tuples serialize as fixed-length arrays, as in upstream serde.
impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
    fn from((a, b): (A, B)) -> Value {
        Value::Array(vec![a.into(), b.into()])
    }
}

impl<A: Into<Value>, B: Into<Value>, C: Into<Value>> From<(A, B, C)> for Value {
    fn from((a, b, c): (A, B, C)) -> Value {
        Value::Array(vec![a.into(), b.into(), c.into()])
    }
}

macro_rules! impl_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                Value::Number(Number(x as f64))
            }
        }
        impl From<&$t> for Value {
            fn from(x: &$t) -> Value {
                Value::Number(Number(*x as f64))
            }
        }
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}
impl_from_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
