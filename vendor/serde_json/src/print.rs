//! Serialization to text.

use crate::value::Value;
use std::fmt::Write;

/// Render `v`; `indent = Some(level)` pretty-prints with two-space indents.
pub fn print(v: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, v, indent);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n.0),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, ('[', ']'), write_value),
        Value::Object(map) => write_seq(
            out,
            map.iter(),
            indent,
            ('{', '}'),
            |out, (k, v), indent| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>),
) {
    out.push(open);
    let n = items.len();
    let inner = indent.map(|d| d + 1);
    for (i, item) in items.enumerate() {
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        write_item(out, item, inner);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(d) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; emit null like serde_json's arbitrary
        // precision mode would reject — callers only persist finite values.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
