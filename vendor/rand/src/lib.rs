//! Offline stand-in for the subset of `rand` 0.8 the harp workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the same *API shape* (`Rng`, `SeedableRng`, `rngs::StdRng`,
//! `seq::SliceRandom`) backed by a xoshiro256++ generator. Streams are
//! deterministic per seed but are **not** bit-compatible with upstream
//! `rand`; nothing in the workspace depends on the exact stream, only on
//! determinism and reasonable statistical quality.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A sample from the "standard" distribution of `T`
    /// (`[0, 1)` for floats, all values for integers, fair coin for bool).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        self.gen::<f64>() < p
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "standard" distribution (see [`Rng::gen`]).
pub trait Standard {
    /// Draw one sample using `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

pub(crate) fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Widening-multiply rejection (Lemire): unbiased and branch-light.
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: f32 = r.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x = r.gen_range(0usize..5);
            seen[x] = true;
            let y = r.gen_range(1i32..=3);
            assert!((1..=3).contains(&y));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate_is_roughly_p() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
