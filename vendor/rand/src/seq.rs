//! Slice helpers, mirroring `rand::seq::SliceRandom`.

use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::uniform_u64_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[crate::uniform_u64_below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(10);
        let v = [3, 5, 7];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
