//! Concrete generators. `StdRng` is xoshiro256++ seeded through SplitMix64.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator (xoshiro256++).
///
/// Not stream-compatible with upstream `rand::rngs::StdRng` (ChaCha12);
/// callers rely only on per-seed determinism.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the recommended seeding for xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    /// The generator's full internal state, for checkpointing. Restoring
    /// with [`StdRng::from_state`] resumes the exact stream: the next
    /// `next_u64` after a save/restore round-trip equals the next one the
    /// saved generator would have produced.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured with [`StdRng::state`].
    ///
    /// The all-zero state is the one fixed point of xoshiro256++ (the
    /// stream would be constant zero), so it is rejected by re-seeding
    /// from 0 instead — a corrupted checkpoint must not produce a
    /// degenerate generator.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return StdRng::seed_from_u64(0);
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
