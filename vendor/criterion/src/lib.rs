//! Offline stand-in for the subset of `criterion` the harp workspace uses.
//!
//! Runs each benchmark for the configured sample count / measurement time and
//! prints mean wall-clock per iteration. There is no statistical analysis or
//! HTML report; the goal is that `cargo bench` compiles, runs, and produces
//! comparable timings in this offline environment.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver configured via a builder, as in upstream criterion.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up period before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };

        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            f(&mut b);
        }
        b.total = Duration::ZERO;
        b.iters = 0;

        // Measurement: fixed sample count, bounded by the time budget.
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            f(&mut b);
            if Instant::now() >= deadline {
                break;
            }
        }

        let per_iter = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "bench {name:<48} {per_iter:>12.2?}/iter ({} iters)",
            b.iters
        );
        self
    }
}

/// Passed to the benchmark closure; times the inner routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one execution of `routine` (upstream batches adaptively; one
    /// timed call per sample is enough for the millisecond-scale routines
    /// benchmarked here).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.total += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Define a benchmark group: either `criterion_group!(name, fn...)` or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = group_runs;
        config = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        targets = trivial
    }

    #[test]
    fn group_macro_expands_and_runs() {
        group_runs();
    }

    #[test]
    fn bencher_counts_iters() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(100))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("spin", |b| b.iter(|| (0..1000u64).sum::<u64>()));
    }
}
