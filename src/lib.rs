//! HARP in Rust: transferable neural WAN traffic engineering for changing
//! topologies (SIGCOMM 2024 reproduction).
//!
//! This crate is a facade: each module re-exports one workspace crate so
//! examples and downstream users write `harp::models::Harp`,
//! `harp::topology::Topology`, etc., without depending on the individual
//! `harp-*` crates.

/// Observability: tracing spans, counters/histograms, and the structured
/// event sink behind `HARP_OBS` / `HARP_OBS_FILE` (re-export of
/// `harp-obs`).
pub mod obs {
    pub use harp_obs::*;
}

/// Process supervision: framed IPC, heartbeat watchdog, backoff restarts,
/// and the trainer escalation ladder (re-export of `harp-super`).
pub mod supervision {
    pub use harp_super::*;
}

/// Deterministic scoped-thread-pool executor used by training, evaluation
/// sweeps, and the blocked matmul kernels (re-export of `harp-runtime`).
pub mod runtime {
    pub use harp_runtime::*;
}

/// Reverse-mode autodiff tape, parameter store, and graph introspection
/// (re-export of `harp-tensor`).
pub mod tensor {
    pub use harp_tensor::*;
}

/// Neural-network layers and optimizers (re-export of `harp-nn`).
pub mod nn {
    pub use harp_nn::*;
}

/// WAN topology representation and edits (re-export of `harp-topology`).
pub mod topology {
    pub use harp_topology::*;
}

/// Tunnel/path enumeration (re-export of `harp-paths`).
pub mod paths {
    pub use harp_paths::*;
}

/// Traffic-matrix generation and prediction (re-export of `harp-traffic`).
pub mod traffic {
    pub use harp_traffic::*;
}

/// LP/Frank–Wolfe min-MLU solvers (re-export of `harp-opt`).
pub mod opt {
    pub use harp_opt::*;
}

/// Topology datasets and synthetic WAN generators (re-export of
/// `harp-datasets`).
pub mod datasets {
    pub use harp_datasets::*;
}

/// TE models (HARP, DOTE, TEAL), training, and evaluation (re-export of
/// `harp-core`).
pub mod models {
    pub use harp_core::*;
}

/// Online TE controller: NDJSON TCP daemon with batched inference,
/// topology updates, and checkpoint hot-reload (re-export of
/// `harp-serve`).
pub mod serve {
    pub use harp_serve::*;
}

/// End-to-end WAN lifecycle simulator: drift replay, failure storms, and
/// online retraining against a live serving fleet (re-export of
/// `harp-lifecycle`).
pub mod lifecycle {
    pub use harp_lifecycle::*;
}

/// Static analysis of recorded tapes: shape re-inference, gradient
/// reachability, and numerical-hazard lints (re-export of `harp-verify`).
pub mod verify {
    pub use harp_verify::*;
}
