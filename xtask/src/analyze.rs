//! `cargo xtask analyze` — record HARP/DOTE/TEAL tapes on a calibrated
//! dataset instance and run every `harp-verify` determinism pass over
//! them, writing a machine-readable findings report for CI.
//!
//! The gate fails (non-zero exit) when any pass produces an
//! `Error`-severity finding; `Info`/`Warn` findings are recorded in the
//! JSON report but do not fail the build.

use std::path::PathBuf;
use std::process::ExitCode;

use harp_bench::cli::Ctx;
use harp_bench::data;
use harp_bench::zoo::{build_model, Scheme};
use harp_core::{analyze_determinism, DeterminismReport};
use harp_verify::Severity;

/// Seed for the freshly initialized (untrained) analysis models: the
/// passes are structural, so parameter values only matter for tie/argmax
/// recomputation, which any fixed seed exercises.
const MODEL_SEED: u64 = 97;

pub fn analyze(rest: &[String]) -> ExitCode {
    let mut out_path = PathBuf::from("results/analysis.json");
    let mut args = rest.iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = PathBuf::from(p),
                None => {
                    eprintln!("error: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown analyze option `{other}`");
                eprintln!("usage: cargo xtask analyze [--out <path>]");
                return ExitCode::FAILURE;
            }
        }
    }

    // Smallest calibrated dataset: the passes are structural, so one
    // representative instance exercises every op the models record.
    let ctx = Ctx {
        quick: true,
        results_dir: PathBuf::from("results"),
    };
    let setup = data::abilene_setup(&ctx);
    let inst = setup.instance(0);
    println!(
        "[analyze] dataset {} ({} nodes, {} flows, {} tunnels)",
        setup.name,
        setup.topo.num_nodes(),
        inst.num_flows,
        inst.num_tunnels
    );

    let schemes = [
        Scheme::Harp { rau_iters: 7 },
        Scheme::Harp { rau_iters: 0 },
        Scheme::Dote,
        // Abilene's tunnel set is 8 shortest paths per flow.
        Scheme::Teal {
            tunnels_per_flow: 8,
        },
    ];
    let mut reports: Vec<DeterminismReport> = Vec::new();
    for scheme in schemes {
        let (model, store) = build_model(scheme, &inst, MODEL_SEED);
        let report = analyze_determinism(&*model, &store, &inst);
        print!("[analyze] {report}");
        reports.push(report);
    }

    let json = render_json(setup.name, &inst, &reports);
    if let Some(dir) = out_path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("[analyze] findings report: {}", out_path.display());

    let errors: usize = reports.iter().map(DeterminismReport::error_count).sum();
    if errors == 0 {
        println!(
            "[analyze] {} scheme(s) certified deterministic",
            reports.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("[analyze] FAILED: {errors} error-severity finding(s)");
        ExitCode::FAILURE
    }
}

/// Hand-rolled JSON: the report shape is small and fixed, and xtask
/// stays decoupled from the vendored serde_json stand-in.
fn render_json(dataset: &str, inst: &harp_core::Instance, reports: &[DeterminismReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"generator\": \"cargo xtask analyze\",\n");
    s.push_str(&format!("  \"dataset\": {},\n", quote(dataset)));
    s.push_str(&format!(
        "  \"instance\": {{ \"flows\": {}, \"tunnels\": {} }},\n",
        inst.num_flows, inst.num_tunnels
    ));
    s.push_str(&format!(
        "  \"errors\": {},\n",
        reports
            .iter()
            .map(DeterminismReport::error_count)
            .sum::<usize>()
    ));
    s.push_str("  \"schemes\": [\n");
    for (ri, r) in reports.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"scheme\": {},\n", quote(r.scheme)));
        s.push_str(&format!("      \"clean\": {},\n", r.is_clean()));
        s.push_str(&format!("      \"errors\": {},\n", r.error_count()));
        s.push_str(&format!("      \"full_nodes\": {},\n", r.full_nodes));
        s.push_str(&format!("      \"cached_nodes\": {},\n", r.cached_nodes));
        s.push_str(&format!("      \"epoch_cache\": {},\n", r.has_epoch_cache));
        s.push_str("      \"findings\": [\n");
        let findings: Vec<String> = r
            .passes()
            .iter()
            .flat_map(|(pass, report)| {
                report.diagnostics.iter().map(move |d| {
                    format!(
                        "        {{ \"pass\": {}, \"severity\": {}, \"code\": {}, \
                         \"node\": {}, \"message\": {} }}",
                        quote(pass),
                        quote(severity_str(d.severity)),
                        quote(d.code),
                        d.node.map_or("null".to_string(), |n| n.to_string()),
                        quote(&d.message)
                    )
                })
            })
            .collect();
        s.push_str(&findings.join(",\n"));
        if !findings.is_empty() {
            s.push('\n');
        }
        s.push_str("      ]\n");
        s.push_str(if ri + 1 < reports.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

fn severity_str(sev: Severity) -> &'static str {
    match sev {
        Severity::Info => "info",
        Severity::Warn => "warn",
        Severity::Error => "error",
    }
}

/// JSON string literal with the escapes the report can actually contain.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes_json_metacharacters() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(quote("ctrl\u{1}"), "\"ctrl\\u0001\"");
    }
}
