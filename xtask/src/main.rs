//! Workspace maintenance tasks, invoked as `cargo xtask <command>`.
//!
//! `lint` — source-level policy checks the compiler can't express, all
//! banned in library code:
//!
//! * `.unwrap()` / `panic!` — every abort point must either be impossible
//!   by construction (use `expect`/`assert!` with a message naming the
//!   invariant) or a `Result` the caller can handle.
//! * truncating numeric `as` casts (`as u8/u16/u32/i8/i16/i32`) — these
//!   silently wrap out-of-range values; use `try_from` with a handled
//!   error, or widen the type.
//! * `std::process::exit` — library code must return errors, not kill the
//!   process (skipping destructors and the caller's cleanup).
//!
//! Exempt: `#[cfg(test)]` modules, `tests/`, `benches/`, `examples/`,
//! binary targets under `src/bin/`, and lines waived with an explicit
//! `lint: allow(unwrap|panic|as-cast|exit) — reason` comment on the same
//! or preceding line.
//!
//! `analyze` — determinism analysis gate: records HARP/DOTE/TEAL tapes
//! and runs the `harp-verify` passes over them (see `analyze.rs`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod analyze;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("analyze") => analyze::analyze(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\ncommands:\n  \
         lint       ban unwrap()/panic!/narrowing casts/process::exit in library code\n  \
         analyze    run determinism analysis passes over recorded model tapes"
    );
}

/// A single policy violation.
struct Finding {
    file: PathBuf,
    line: usize,
    what: &'static str,
    text: String,
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    // Library source only: each crate's src/ tree plus the root facade.
    for dir in crate_src_dirs(&root) {
        collect_rs(&dir, &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        if is_exempt_path(file) {
            continue;
        }
        scanned += 1;
        match std::fs::read_to_string(file) {
            Ok(src) => scan_source(file, &src, &mut findings),
            Err(e) => {
                eprintln!("error: read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if findings.is_empty() {
        println!("xtask lint: {scanned} library file(s) clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!(
                "{}:{}: banned `{}` in library code: {}",
                f.file.display(),
                f.line,
                f.what,
                f.text.trim()
            );
        }
        println!(
            "xtask lint: {} violation(s) in {} file(s) scanned",
            findings.len(),
            scanned
        );
        println!("fix by returning Result, using expect/assert! with an invariant message,");
        println!("or waiving the line with `// lint: allow(unwrap) — reason`");
        ExitCode::FAILURE
    }
}

/// The workspace root: xtask is always launched by cargo with the
/// manifest dir set, and lives one level below the root.
fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    Path::new(&manifest)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// `src/` directories of library crates: `crates/*/src` and the root
/// facade's `src`. `xtask` itself and `vendor/` are not library code.
fn crate_src_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let src = e.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    dirs
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Binary targets are CLI code, not library surface.
fn is_exempt_path(p: &Path) -> bool {
    p.components().any(|c| {
        let c = c.as_os_str();
        c == "bin" || c == "tests" || c == "benches" || c == "examples"
    })
}

fn scan_source(file: &Path, src: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = src.lines().collect();
    let mut in_test_mod = false;
    // Brace depth inside a #[cfg(test)] item; meaningful only while inside.
    let mut test_depth = 0i64;
    let mut pending_test_attr = false;
    let mut prev_waiver = false;

    for (i, raw) in lines.iter().enumerate() {
        let line = strip_comments_and_strings(raw);
        let trimmed = raw.trim_start();

        // Track #[cfg(test)] items (the attribute may sit lines above the
        // opening brace).
        if trimmed.starts_with("#[cfg(test)]") {
            pending_test_attr = true;
        }
        if pending_test_attr && !in_test_mod && line.contains('{') {
            in_test_mod = true;
            test_depth = 0;
            pending_test_attr = false;
        }
        if in_test_mod {
            test_depth += brace_delta(&line);
            if test_depth <= 0 {
                in_test_mod = false;
            }
            prev_waiver = false;
            continue;
        }

        // Doc comments hold example code compiled as tests.
        let is_doc = trimmed.starts_with("///") || trimmed.starts_with("//!");
        let waived = prev_waiver || has_waiver(raw);
        // Only a comment-only waiver line covers the line after it.
        prev_waiver = has_waiver(raw) && trimmed.starts_with("//");
        if is_doc || waived {
            continue;
        }

        for (needle, what) in [(".unwrap()", ".unwrap()"), ("panic!", "panic!")] {
            if line.contains(needle) {
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line: i + 1,
                    what,
                    text: (*raw).to_string(),
                });
            }
        }
        if line.contains("process::exit") {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: i + 1,
                what: "process::exit",
                text: (*raw).to_string(),
            });
        }
        if let Some(what) = narrowing_cast(&line) {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: i + 1,
                what,
                text: (*raw).to_string(),
            });
        }
    }
}

/// First truncating numeric `as` cast on a (comment/string-stripped)
/// line: `as u8/u16/u32/i8/i16/i32` silently wraps out-of-range values.
/// Widening (`u64`, `i64`, `usize`…) and float casts stay allowed.
fn narrowing_cast(stripped: &str) -> Option<&'static str> {
    const NARROW: [(&str, &str); 6] = [
        ("u8", "as u8"),
        ("u16", "as u16"),
        ("u32", "as u32"),
        ("i8", "as i8"),
        ("i16", "as i16"),
        ("i32", "as i32"),
    ];
    let mut from = 0;
    while let Some(pos) = stripped[from..].find(" as ") {
        let tok_start = from + pos + 4;
        let tok: &str = &stripped[tok_start..];
        let end = tok
            .find(|c: char| !c.is_alphanumeric() && c != '_')
            .unwrap_or(tok.len());
        let tok = &tok[..end];
        if let Some((_, what)) = NARROW.iter().find(|(t, _)| *t == tok) {
            return Some(what);
        }
        from = tok_start;
    }
    None
}

/// `lint: allow(unwrap|panic|as-cast|exit)` comment waiver.
fn has_waiver(raw: &str) -> bool {
    ["unwrap", "panic", "as-cast", "exit"]
        .iter()
        .any(|k| raw.contains(&format!("lint: allow({k})")))
}

/// Remove `//` comments and the contents of string literals so banned
/// tokens inside them don't count. Char literals and raw strings are rare
/// enough in this workspace that the simple state machine suffices.
fn strip_comments_and_strings(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

fn brace_delta(stripped: &str) -> i64 {
    let mut d = 0i64;
    for c in stripped.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<(usize, &'static str)> {
        let mut f = Vec::new();
        scan_source(Path::new("t.rs"), src, &mut f);
        f.into_iter().map(|x| (x.line, x.what)).collect()
    }

    #[test]
    fn flags_unwrap_and_panic_in_library_code() {
        let src = "fn f() {\n    let x = y.unwrap();\n    panic!(\"boom\");\n}\n";
        assert_eq!(scan(src), vec![(2, ".unwrap()"), (3, "panic!")]);
    }

    #[test]
    fn ignores_test_modules_docs_comments_and_strings() {
        let src = concat!(
            "/// let v = o.unwrap();\n",
            "fn f() {\n",
            "    // a comment: x.unwrap()\n",
            "    let s = \"panic! inside a string\";\n",
            "    let _ = s;\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn g() {\n",
            "        h().unwrap();\n",
            "    }\n",
            "}\n",
        );
        assert_eq!(scan(src), vec![]);
    }

    #[test]
    fn waiver_exempts_same_or_next_line() {
        let src = concat!(
            "fn f() {\n",
            "    // lint: allow(panic) — documented contract\n",
            "    panic!(\"rank\");\n",
            "    x.unwrap(); // lint: allow(unwrap) — reason\n",
            "    y.unwrap();\n",
            "}\n",
        );
        assert_eq!(scan(src), vec![(5, ".unwrap()")]);
    }

    #[test]
    fn flags_narrowing_casts_but_not_widening_ones() {
        let src = concat!(
            "fn f(x: f64, n: usize) {\n",
            "    let a = x as u32;\n",
            "    let b = n as u64;\n",
            "    let c = n as i32;\n",
            "    let d = x as f32;\n",
            "    let e = n as usize;\n",
            "}\n",
        );
        assert_eq!(scan(src), vec![(2, "as u32"), (4, "as i32")]);
    }

    #[test]
    fn cast_rule_ignores_strings_comments_and_identifiers() {
        let src = concat!(
            "fn f() {\n",
            "    // converts as u8 eventually\n",
            "    let s = \"stored as u16\";\n",
            "    let alias = s;\n",
            "    let _ = atlas_u32(alias);\n",
            "}\n",
        );
        assert_eq!(scan(src), vec![]);
    }

    #[test]
    fn flags_process_exit_with_waiver_escape() {
        let src = concat!(
            "fn f() {\n",
            "    std::process::exit(2);\n",
            "    // lint: allow(exit) — CLI-only helper\n",
            "    std::process::exit(3);\n",
            "    n as u16; // lint: allow(as-cast) — bounded by protocol\n",
            "}\n",
        );
        assert_eq!(scan(src), vec![(2, "process::exit")]);
    }

    #[test]
    fn code_resumes_after_test_module_closes() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn g() { h().unwrap(); }\n",
            "}\n",
            "fn f() { i().unwrap(); }\n",
        );
        assert_eq!(scan(src), vec![(5, ".unwrap()")]);
    }
}
